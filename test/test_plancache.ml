(* Plan cache & multi-query optimization: differential tests (warm-cache
   plans identical to cold ones, shared-memo batches identical in rows to
   per-query optimization), fingerprint canonicalization properties over
   seeded random expressions, invalidation on catalog epoch bumps, and
   the zero-rework guarantees (no rule firings, no logical-property
   derivations on a warm path). *)

module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Cost = Oodb_cost.Cost
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Engine = Open_oodb.Model.Engine
module Db = Oodb_exec.Db
module Q = Oodb_workloads.Queries
module Metrics = Oodb_obs.Metrics
module Prng = Oodb_util.Prng
module Fingerprint = Oodb_plancache.Fingerprint
module Lru = Oodb_plancache.Lru
module Plancache = Oodb_plancache.Plancache

let plan_repr = function
  | None -> "<no plan>"
  | Some p ->
    Format.asprintf "%a cost=%a" Engine.pp_plan p Cost.pp p.Engine.cost

let check_same_plan msg a b = Alcotest.(check string) msg (plan_repr a) (plan_repr b)

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check (option string)) "evict on 1st add" None (Lru.add l "a" "1");
  Alcotest.(check (option string)) "evict on 2nd add" None (Lru.add l "b" "2");
  Alcotest.(check (option string)) "miss" None (Lru.find l "z");
  Alcotest.(check (option string)) "hit" (Some "1") (Lru.find l "a");
  (* "a" is now MRU, so a third insertion evicts "b" *)
  Alcotest.(check (option string)) "lru evicted" (Some "b") (Lru.add l "c" "3");
  Alcotest.(check (list string)) "mru order" [ "c"; "a" ]
    (List.map fst (Lru.items l));
  (* replacement promotes but never evicts *)
  Alcotest.(check (option string)) "replace" None (Lru.add l "a" "1'");
  Alcotest.(check (list string)) "replace promotes" [ "a"; "c" ]
    (List.map fst (Lru.items l));
  let c = Lru.counters l in
  Alcotest.(check int) "hits" 1 c.Lru.hits;
  Alcotest.(check int) "misses" 1 c.Lru.misses;
  Alcotest.(check int) "insertions" 3 c.Lru.insertions;
  Alcotest.(check int) "evictions" 1 c.Lru.evictions;
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Fingerprints: hand-written invariants                               *)

let fp ?(options = Options.default) ?(required = Physprop.empty) cat q =
  Fingerprint.make ~catalog:cat ~options ~required q

let test_fingerprint_alpha_invariance () =
  let cat = OC.catalog_with_indexes () in
  let q2_renamed =
    Logical.get ~coll:"Cities" ~binding:"city"
    |> Logical.mat ~src:"city" ~field:"mayor"
    |> Logical.select [ Pred.atom Pred.Eq (Pred.Field ("city.mayor", "name"))
                          (Pred.Const (Value.Str "Joe")) ]
  in
  Alcotest.(check bool) "q2 alpha-renamed shares the fingerprint" true
    (Fingerprint.equal (fp cat Q.q2) (fp cat q2_renamed));
  Alcotest.(check bool) "canonical forms coincide" true
    (Logical.equal (Fingerprint.canonical Q.q2) (Fingerprint.canonical q2_renamed))

let test_fingerprint_conjunct_order () =
  let cat = OC.catalog_with_indexes () in
  let swapped =
    (* q4 with its two conjuncts reversed and one atom mirrored *)
    Logical.get ~coll:"Tasks" ~binding:"t"
    |> Logical.unnest ~out:"m" ~src:"t" ~field:"team_members"
    |> Logical.mat_ref ~out:"e" ~src:"m"
    |> Logical.select
         [ Pred.atom Pred.Eq (Pred.Const (Value.Int 100)) (Pred.Field ("t", "time"));
           Pred.atom Pred.Eq (Pred.Field ("e", "name")) (Pred.Const (Value.Str "Fred")) ]
  in
  Alcotest.(check bool) "conjunct order and atom mirroring are canonicalized" true
    (Fingerprint.equal (fp cat Q.q4) (fp cat swapped))

let test_fingerprint_sensitivity () =
  let cat = OC.catalog_with_indexes () in
  let distinct msg a b =
    Alcotest.(check bool) msg false (Fingerprint.equal a b)
  in
  distinct "different queries differ" (fp cat Q.q1) (fp cat Q.q2);
  distinct "disabling a rule splits entries" (fp cat Q.q1)
    (fp ~options:(Options.disable "mat-to-join" Options.default) cat Q.q1);
  distinct "required order splits entries" (fp cat Q.q3)
    (fp
       ~required:
         { Physprop.empty with
           Physprop.order = Some { Physprop.ord_binding = "c"; ord_field = Some "name" } }
       cat Q.q3);
  (* explicit projection aliases name result columns: not alpha-noise *)
  let alias name =
    Q.q2 |> Logical.project [ { Logical.p_expr = Pred.Field ("c", "name"); p_name = name } ]
  in
  distinct "projection aliases are preserved" (fp cat (alias "a")) (fp cat (alias "b"));
  let cat2 = OC.catalog () in
  distinct "catalog content splits entries" (fp cat Q.q2) (fp cat2 Q.q2)

let test_fingerprint_guided_meta () =
  (* guided search is meta — it changes how fast the winner is found,
     never which winner — so it must share plan-cache entries with the
     exhaustive configuration *)
  let cat = OC.catalog_with_indexes () in
  Alcotest.(check bool) "guided on/off share the fingerprint" true
    (Fingerprint.equal (fp cat Q.q1)
       (fp ~options:(Options.with_guided Options.default) cat Q.q1));
  Alcotest.(check bool) "guided+required order still splits on order" false
    (Fingerprint.equal (fp cat Q.q3)
       (fp
          ~options:(Options.with_guided Options.default)
          ~required:
            { Physprop.empty with
              Physprop.order = Some { Physprop.ord_binding = "c"; ord_field = Some "name" } }
          cat Q.q3))

let test_fingerprint_epoch () =
  let cat = OC.catalog_with_indexes () in
  let before = fp cat Q.q1 in
  Alcotest.(check bool) "stable across no-op" true
    (Fingerprint.equal before (fp cat Q.q1));
  Catalog.bump_epoch cat;
  Alcotest.(check bool) "epoch bump changes the fingerprint" false
    (Fingerprint.equal before (fp cat Q.q1));
  let cat' = OC.catalog_with_indexes () in
  Catalog.set_distinct cat' ~cls:"Person" ~field:"name" 17;
  Alcotest.(check bool) "statistics refresh changes the fingerprint" false
    (Fingerprint.equal before (fp cat' Q.q1))

(* ------------------------------------------------------------------ *)
(* Fuzz: random well-formed expressions over the workload schema       *)

(* The generator itself lives in [Helpers.Fuzz] so the typed-algebra
   property tests can reuse the same query population. *)

let gen_expr = Helpers.Fuzz.gen_expr

let n_fuzz = Helpers.Fuzz.n_fuzz

let test_fuzz_fingerprints () =
  let cat = OC.catalog_with_indexes () in
  let options = Options.default in
  let by_fp = Hashtbl.create 64 in
  for seed = 1 to n_fuzz do
    let q = gen_expr ~seed ~root_name:"x" in
    (match Logical.well_formed cat q with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: generator produced ill-formed query: %s" seed m);
    let f = fp ~options cat q in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: fingerprint is stable" seed)
      true
      (Fingerprint.equal f (fp ~options cat q));
    let renamed = gen_expr ~seed ~root_name:"very_different_binding" in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: alpha-renaming invariance" seed)
      true
      (Fingerprint.equal f (fp ~options cat renamed));
    (* injectivity smoke: equal digests must come from equal canonical keys *)
    let key = Fingerprint.key ~catalog:cat ~options ~required:Physprop.empty q in
    (match Hashtbl.find_opt by_fp (Fingerprint.to_hex f) with
    | Some key' when key' <> key -> Alcotest.failf "seed %d: fingerprint collision" seed
    | _ -> ());
    Hashtbl.replace by_fp (Fingerprint.to_hex f) key
  done;
  Alcotest.(check bool) "fuzz generated distinct queries" true (Hashtbl.length by_fp > 50)

let test_fuzz_plans_verify () =
  let cat = OC.catalog_with_indexes () in
  for seed = 1 to n_fuzz do
    let q = gen_expr ~seed ~root_name:"x" in
    let outcome = Opt.optimize cat q in
    match outcome.Opt.plan with
    | None -> Alcotest.failf "seed %d: no plan" seed
    | Some plan -> (
      match Oodb_verify.Verify.plan cat plan with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "seed %d: optimized plan fails verification:@.%a" seed
          Oodb_verify.Verify.pp_violations vs)
  done

(* ------------------------------------------------------------------ *)
(* Differential: warm cache vs cold optimizer                          *)

let test_warm_equals_cold () =
  List.iter
    (fun (cat_name, mk_cat) ->
      let cat = mk_cat () in
      let pc = Plancache.create () in
      List.iter
        (fun (name, q) ->
          let label = cat_name ^ "/" ^ name in
          let cold = Plancache.optimize pc cat q in
          Alcotest.(check bool) (label ^ ": first call is cold") false cold.Plancache.cached;
          let fresh = Opt.optimize cat q in
          check_same_plan (label ^ ": cold matches the raw optimizer") fresh.Opt.plan
            cold.Plancache.plan;
          let warm = Plancache.optimize pc cat q in
          Alcotest.(check bool) (label ^ ": second call hits") true warm.Plancache.cached;
          check_same_plan (label ^ ": warm plan structurally identical") cold.Plancache.plan
            warm.Plancache.plan)
        Q.all)
    [ ("indexes", OC.catalog_with_indexes); ("no-indexes", OC.catalog) ]

let test_hit_then_epoch_miss () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.create () in
  ignore (Plancache.optimize pc cat Q.q2);
  let s = Plancache.stats pc in
  Alcotest.(check int) "one miss" 1 s.Plancache.misses;
  ignore (Plancache.optimize pc cat Q.q2);
  let s = Plancache.stats pc in
  Alcotest.(check int) "no-op lookup hits" 1 s.Plancache.hits;
  Catalog.bump_epoch cat;
  let o = Plancache.optimize pc cat Q.q2 in
  Alcotest.(check bool) "epoch bump invalidates" false o.Plancache.cached;
  let s = Plancache.stats pc in
  Alcotest.(check int) "second miss" 2 s.Plancache.misses;
  Alcotest.(check int) "both plans stored" 2 s.Plancache.entries

let test_cache_option_bypass () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.create () in
  let options = Options.without_cache Options.default in
  let a = Plancache.optimize ~options pc cat Q.q2 in
  let b = Plancache.optimize ~options pc cat Q.q2 in
  Alcotest.(check bool) "bypass never serves" false (a.Plancache.cached || b.Plancache.cached);
  let s = Plancache.stats pc in
  Alcotest.(check int) "bypass touches no counters" 0 (s.Plancache.hits + s.Plancache.misses);
  Alcotest.(check int) "bypass stores nothing" 0 s.Plancache.entries

let test_lru_eviction_reoptimizes () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.create ~capacity:2 () in
  ignore (Plancache.optimize pc cat Q.q1);
  ignore (Plancache.optimize pc cat Q.q2);
  ignore (Plancache.optimize pc cat Q.q3);
  let s = Plancache.stats pc in
  Alcotest.(check int) "capacity bound holds" 2 s.Plancache.entries;
  Alcotest.(check int) "one eviction" 1 s.Plancache.evictions;
  let o = Plancache.optimize pc cat Q.q1 in
  Alcotest.(check bool) "evicted entry re-optimized" false o.Plancache.cached;
  check_same_plan "and identical to the original" (Opt.optimize cat Q.q1).Opt.plan
    o.Plancache.plan

(* ------------------------------------------------------------------ *)
(* Disk persistence                                                    *)

let fresh_dir () =
  let f = Filename.temp_file "oodb-plancache-test" "" in
  Sys.remove f;
  f

let test_disk_persistence () =
  let dir = fresh_dir () in
  let cat = OC.catalog_with_indexes () in
  let pc1 = Plancache.create ~dir () in
  let cold = Plancache.optimize pc1 cat Q.q1 in
  Alcotest.(check bool) "cold in a fresh dir" false cold.Plancache.cached;
  (* a different cache instance over the same directory serves the plan *)
  let pc2 = Plancache.create ~dir () in
  let warm = Plancache.optimize pc2 cat Q.q1 in
  Alcotest.(check bool) "served across instances via disk" true warm.Plancache.cached;
  Alcotest.(check int) "counted as a disk hit" 1 (Plancache.stats pc2).Plancache.disk_hits;
  check_same_plan "disk plan identical" cold.Plancache.plan warm.Plancache.plan;
  (* corruption degrades to a miss, never to a wrong plan *)
  let file =
    Filename.concat dir
      (Fingerprint.to_hex
         (Fingerprint.make ~catalog:cat ~options:Options.default ~required:Physprop.empty
            Q.q1)
      ^ ".plan")
  in
  let oc = open_out_bin file in
  output_string oc "garbage";
  close_out oc;
  let pc3 = Plancache.create ~dir () in
  let o = Plancache.optimize pc3 cat Q.q1 in
  Alcotest.(check bool) "corrupt entry re-optimized" false o.Plancache.cached;
  check_same_plan "and identical to the cold plan" cold.Plancache.plan o.Plancache.plan

(* The disk tier revalidates entries before serving them (a stale plan
   unmarshals fine but may no longer typecheck against the live
   catalog); a rejected entry is a counted miss and is evicted so it
   cannot be served again. *)
let test_disk_reject () =
  let dir = fresh_dir () in
  let cat = OC.catalog_with_indexes () in
  let pc1 = Plancache.create ~dir () in
  ignore (Plancache.optimize pc1 cat Q.q1);
  let key = fp cat Q.q1 in
  let pc2 = Plancache.create ~dir () in
  (match Plancache.lookup ~validate:(fun _ -> false) pc2 key with
  | Some _ -> Alcotest.fail "entry failing validation must be a miss"
  | None -> ());
  Alcotest.(check int) "counted as a disk reject" 1
    (Plancache.stats pc2).Plancache.disk_rejects;
  (* the rejected entry was evicted: even a permissive lookup misses *)
  (match Plancache.lookup pc2 key with
  | Some _ -> Alcotest.fail "rejected entry must be evicted from disk"
  | None -> ());
  (* entries that pass the default typecheck validator keep being
     served, and never count as rejects *)
  let pc3 = Plancache.create ~dir () in
  ignore (Plancache.optimize pc3 cat Q.q1);
  let pc4 = Plancache.create ~dir () in
  let warm = Plancache.optimize pc4 cat Q.q1 in
  Alcotest.(check bool) "valid entry still served from disk" true warm.Plancache.cached;
  Alcotest.(check int) "no rejects on the valid path" 0
    (Plancache.stats pc4).Plancache.disk_rejects

(* Via [of_env]: CI re-runs the whole suite with [OODB_PLANCACHE_DIR]
   pointing at a directory persisted across runs, so this test both
   populates that directory and, on later runs, must serve the
   pre-existing marshalled entries identically to a cold optimization —
   the cache-state-independence property the extra CI passes exist to
   check. Without the variable it degrades to a memory-only check. *)
let test_env_cache_matches_cold () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.of_env () in
  List.iter
    (fun (name, q) ->
      let o = Plancache.optimize pc cat q in
      check_same_plan (name ^ ": env cache matches the raw optimizer")
        (Opt.optimize cat q).Opt.plan o.Plancache.plan;
      let warm = Plancache.optimize pc cat q in
      Alcotest.(check bool) (name ^ ": re-lookup hits") true warm.Plancache.cached;
      check_same_plan (name ^ ": warm identical") o.Plancache.plan warm.Plancache.plan)
    Q.all;
  match Plancache.dir pc with
  | None -> ()
  | Some d ->
    Alcotest.(check bool) "entries persisted for the next CI pass" true
      (Array.exists (fun f -> Filename.check_suffix f ".plan") (Sys.readdir d))

(* ------------------------------------------------------------------ *)
(* Multi-query optimization                                            *)

let test_optimize_all_rows () =
  let db = Lazy.force Helpers.small_db in
  let cat = Db.catalog db in
  let qs = List.map snd Q.all in
  let batch = Opt.optimize_all cat qs in
  List.iter2
    (fun (name, q) (b : Opt.outcome) ->
      let single = Opt.optimize cat q in
      let rows_of (o : Opt.outcome) =
        match o.Opt.plan with
        | None -> Alcotest.failf "%s: no plan" name
        | Some p -> Helpers.run_rows db p
      in
      Helpers.check_same_rows
        (name ^ ": shared-memo plan returns the same rows")
        (rows_of single) (rows_of b);
      (* memo-level sharing must not change what the search finds *)
      check_same_plan (name ^ ": same winning plan") single.Opt.plan b.Opt.plan)
    Q.all batch

let test_optimize_all_shares_memo () =
  let cat = OC.catalog_with_indexes () in
  let qs = List.map snd Q.all in
  let batch = Opt.optimize_all cat qs in
  let shared = (List.nth batch (List.length batch - 1)).Opt.stats.Engine.groups in
  let individual =
    List.fold_left (fun acc q -> acc + (Opt.optimize cat q).Opt.stats.Engine.groups) 0 qs
  in
  Alcotest.(check bool)
    (Printf.sprintf "shared memo is smaller: %d < %d" shared individual)
    true (shared < individual)

let test_plancache_optimize_all () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.create () in
  let qs = List.map snd Q.all in
  let cold = Plancache.optimize_all pc cat qs in
  Alcotest.(check int) "all cold" 0
    (List.length (List.filter (fun o -> o.Plancache.cached) cold));
  (* mixed batch: q2 warm from the first batch, a new query cold *)
  let q_new =
    Logical.get ~coll:"Cities" ~binding:"c"
    |> Logical.select [ Pred.atom Pred.Gt (Pred.Field ("c", "population"))
                          (Pred.Const (Value.Int 1000)) ]
  in
  let mixed = Plancache.optimize_all pc cat [ Q.q2; q_new ] in
  (match mixed with
  | [ a; b ] ->
    Alcotest.(check bool) "known query served" true a.Plancache.cached;
    Alcotest.(check bool) "new query cold" false b.Plancache.cached;
    check_same_plan "served plan matches the cold batch's"
      (List.nth cold 1).Plancache.plan a.Plancache.plan
  | _ -> Alcotest.fail "expected two outcomes");
  let warm = Plancache.optimize_all pc cat qs in
  List.iter2
    (fun (c : Plancache.outcome) (w : Plancache.outcome) ->
      Alcotest.(check bool) "warm batch all cached" true w.Plancache.cached;
      check_same_plan "warm batch plans identical" c.Plancache.plan w.Plancache.plan)
    cold warm

(* ------------------------------------------------------------------ *)
(* Zero rework on warm paths                                           *)

(* Acceptance: re-optimizing the 4-query workload against a session that
   already solved it fires no rules at all — registration finds every
   node interned (empty closure queue) and the physical memo serves each
   (root, required) goal without trying implementations or enforcers. *)
let test_warm_session_zero_rule_firings () =
  let cat = OC.catalog_with_indexes () in
  let options = Options.default in
  let cfg = options.Options.config in
  let spec =
    { Engine.derive_lprop = Oodb_cost.Estimator.derive cfg cat;
      transformations = Open_oodb.Trules.all cfg cat;
      implementations = Open_oodb.Irules.all cfg cat;
      enforcers = Open_oodb.Enforcers.all cfg cat }
  in
  let s = Engine.session ~disabled:options.Options.disabled spec in
  let workload = [ Q.q1; Q.q2; Q.q3; Q.q4 ] in
  (* the batch discipline: register every root, then solve — searches run
     against the fully-grown memo, so nothing is conservatively
     re-searched on the next pass *)
  let solve_all () =
    workload
    |> List.map (fun q -> Engine.register s (Open_oodb.Model.expr_of_logical q))
    |> List.map (fun root -> Engine.solve s root ~required:Physprop.empty)
  in
  let first = solve_all () in
  let counters = Engine.rule_counters (Engine.session_ctx s) in
  let second = solve_all () in
  let counters' = Engine.rule_counters (Engine.session_ctx s) in
  List.iter2
    (fun (name, tried, fired) (name', tried', fired') ->
      Alcotest.(check string) "same rule" name name';
      Alcotest.(check int) (name ^ ": no rule tried on the warm pass") tried tried';
      Alcotest.(check int) (name ^ ": no rule fired on the warm pass") fired fired')
    counters counters';
  Alcotest.(check int) "rule table did not grow" (List.length counters)
    (List.length counters');
  List.iter2
    (fun (a : Engine.result) (b : Engine.result) ->
      check_same_plan "warm session returns identical plans" a.Engine.plan b.Engine.plan)
    first second

(* The regression the cache fixes: Optimizer.optimize re-derives logical
   properties (one derivation per memo group) on every call. Behind the
   fingerprint, a repeated query derives nothing. *)
let test_no_rederivation_on_hit () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.create () in
  let registry = Metrics.create () in
  let derivations () =
    match Metrics.find (Metrics.snapshot registry) "plancache/derivations" with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  ignore (Plancache.optimize ~registry pc cat Q.q1);
  let cold = derivations () in
  Alcotest.(check bool)
    (Printf.sprintf "cold call derives properties (%d groups)" cold)
    true (cold > 0);
  ignore (Plancache.optimize ~registry pc cat Q.q1);
  Alcotest.(check int) "warm call derives nothing" cold (derivations ());
  (* the uncached entry point keeps paying the full derivation cost on
     every call — the behavior the cache is the fix for. (Derivations
     exceed the final group count: groups merged away were derived too.) *)
  let count = ref 0 in
  let trace = function Engine.Group_created _ -> incr count | _ -> () in
  ignore (Opt.optimize ~trace cat Q.q1);
  let per_call = !count in
  Alcotest.(check int) "cache's cold derivation count matches one raw run" per_call cold;
  ignore (Opt.optimize ~trace cat Q.q1);
  Alcotest.(check int) "the raw optimizer re-derives on every call" (2 * per_call) !count;
  let fresh = Opt.optimize cat Q.q1 in
  Alcotest.(check bool) "derivations cover at least the surviving groups" true
    (cold >= fresh.Opt.stats.Engine.groups)

let test_metrics_wiring () =
  let cat = OC.catalog_with_indexes () in
  let pc = Plancache.create () in
  let registry = Metrics.create () in
  ignore (Plancache.optimize ~registry pc cat Q.q2);
  ignore (Plancache.optimize ~registry pc cat Q.q2);
  ignore (Plancache.optimize_all ~registry pc cat [ Q.q2; Q.q3 ]);
  let snap = Metrics.snapshot registry in
  let counter name =
    match Metrics.find snap name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  Alcotest.(check int) "hits counted" 2 (counter "plancache/hit");
  Alcotest.(check int) "misses counted" 2 (counter "plancache/miss");
  Alcotest.(check int) "insertions counted" 2 (counter "plancache/insert");
  Alcotest.(check int) "batched cold roots counted" 1 (counter "plancache/mqo/roots")

let () =
  Alcotest.run "plancache"
    [ ( "lru",
        [ Alcotest.test_case "bounded, promoting, instrumented" `Quick test_lru_basics ] );
      ( "fingerprint",
        [ Alcotest.test_case "alpha-renaming invariance" `Quick
            test_fingerprint_alpha_invariance;
          Alcotest.test_case "conjunct order canonicalized" `Quick
            test_fingerprint_conjunct_order;
          Alcotest.test_case "sensitivity to plan-relevant inputs" `Quick
            test_fingerprint_sensitivity;
          Alcotest.test_case "catalog epoch & statistics" `Quick test_fingerprint_epoch;
          Alcotest.test_case "guided flag is meta" `Quick test_fingerprint_guided_meta ] );
      ( "fuzz",
        [ Alcotest.test_case "fingerprint properties over random queries" `Quick
            test_fuzz_fingerprints;
          Alcotest.test_case "optimized random plans verify" `Slow test_fuzz_plans_verify ] );
      ( "differential",
        [ Alcotest.test_case "warm cache equals cold optimizer" `Quick test_warm_equals_cold;
          Alcotest.test_case "hit on no-op, miss after epoch bump" `Quick
            test_hit_then_epoch_miss;
          Alcotest.test_case "Options.cache=false bypasses" `Quick test_cache_option_bypass;
          Alcotest.test_case "eviction falls back to re-optimization" `Quick
            test_lru_eviction_reoptimizes;
          Alcotest.test_case "OODB_PLANCACHE_DIR cache matches cold" `Quick
            test_env_cache_matches_cold;
          Alcotest.test_case "disk tier round-trips and rejects corruption" `Quick
            test_disk_persistence;
          Alcotest.test_case "disk tier revalidates and evicts stale entries" `Quick
            test_disk_reject ] );
      ( "mqo",
        [ Alcotest.test_case "optimize_all returns the same rows" `Slow
            test_optimize_all_rows;
          Alcotest.test_case "shared memo is smaller than the sum" `Quick
            test_optimize_all_shares_memo;
          Alcotest.test_case "cached optimize_all mixes hits and misses" `Quick
            test_plancache_optimize_all ] );
      ( "zero-rework",
        [ Alcotest.test_case "warm session fires zero rules" `Quick
            test_warm_session_zero_rule_firings;
          Alcotest.test_case "no logical-property re-derivation on hits" `Quick
            test_no_rederivation_on_hit;
          Alcotest.test_case "obs counters wired" `Quick test_metrics_wiring ] ) ]
