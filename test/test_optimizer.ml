(* End-to-end optimizer tests: the plan shapes and cost relations of the
   paper's four example queries (Figures 6-13, Tables 2-3). *)

module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module Cost = Oodb_cost.Cost
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module Engine = Open_oodb.Model.Engine

let cat () = OC.catalog_with_indexes ()

let plan ?options ?required q = Opt.plan_exn (Opt.optimize ?options ?required (cat ()) q)

let total p = Cost.total p.Engine.cost

(* ------------------------------------------------------------------ *)
(* Query 1 (Figures 5-7, Table 2)                                       *)

let test_q1_fig6_shape () =
  (* Fig 6: project over two hash joins; departments filtered and their
     plants assembled on the small side; employees and jobs scanned *)
  Helpers.check_shape "figure 6"
    [ "project"; "hash-join"; "hash-join"; "filter"; "assembly"; "file-scan"; "file-scan";
      "file-scan" ]
    (plan Q.q1)

let test_q1_fig6_details () =
  let p = plan Q.q1 in
  let algs = Helpers.algs p in
  (* the assembly resolves d.plant on the department side, not per employee *)
  Alcotest.(check bool) "assembles e.dept.plant" true
    (List.exists
       (function
         | Physical.Assembly { paths = [ { Physical.ap_out = "e.dept.plant"; _ } ]; _ } -> true
         | _ -> false)
       algs);
  (* jobs and departments are file-scanned via their extents *)
  let scanned =
    List.filter_map (function Physical.File_scan { coll; _ } -> Some coll | _ -> None) algs
  in
  Alcotest.(check bool) "scans Departments/Employees/Jobs" true
    (List.sort compare scanned = [ "Departments"; "Employees"; "Jobs" ])

let test_q1_naive_is_fig7 () =
  (* disabling mat-to-join leaves only pointer chasing: Fig 7's plan *)
  let options = Options.disable "mat-to-join" Options.default in
  let p = plan ~options Q.q1 in
  Alcotest.(check bool) "no joins" true
    (List.for_all (function Physical.Hash_join _ -> false | _ -> true) (Helpers.algs p));
  Alcotest.(check bool) "at least 3x worse than optimal" true (total p > 3.0 *. total (plan Q.q1))

let test_q1_table2_ordering () =
  let all = total (plan Q.q1) in
  let naive = total (plan ~options:(Options.disable "mat-to-join" Options.default) Q.q1) in
  let no_window =
    total
      (plan
         ~options:(Options.with_assembly_window 1 (Options.disable "mat-to-join" Options.default))
         Q.q1)
  in
  let no_commute = total (plan ~options:(Options.without_join_commutativity Options.default) Q.q1) in
  Alcotest.(check bool) "all rules best" true (all < no_commute);
  Alcotest.(check bool) "naive worse than uncommuted" true (no_commute < naive);
  Alcotest.(check bool) "window 1 worst" true (naive < no_window)

(* ------------------------------------------------------------------ *)
(* Query 2 (Figures 8-9)                                                *)

let test_q2_collapses_to_index_scan () =
  let p = plan Q.q2 in
  Helpers.check_shape "figure 8" [ "index-scan" ] p;
  match p.Engine.alg with
  | Physical.Index_scan { index = "cities_mayor_name"; key = Value.Str "Joe"; residual = []; _ } ->
    ()
  | _ -> Alcotest.fail "expected collapse onto the mayor-name path index"

let test_q2_no_collapse_is_fig9 () =
  let options = Options.disable "collapse-index-scan" Options.default in
  let p = plan ~options Q.q2 in
  Helpers.check_shape "figure 9" [ "filter"; "assembly"; "file-scan" ] p;
  (* "a substantial increase in execution time (about four orders of
     magnitude)" *)
  Alcotest.(check bool) "orders of magnitude" true (total p > 100.0 *. total (plan Q.q2))

let test_q2_no_index_same_as_no_collapse () =
  let cat_no_ix = OC.catalog () in
  Catalog.add_index cat_no_ix OC.idx_tasks_time;
  let p = Opt.plan_exn (Opt.optimize cat_no_ix Q.q2) in
  Helpers.check_shape "no path index" [ "filter"; "assembly"; "file-scan" ] p

(* ------------------------------------------------------------------ *)
(* Query 3 (Figures 10-11): physical properties and goal-directed search *)

let test_q3_enforcer_plan () =
  let p = plan Q.q3 in
  Helpers.check_shape "figure 10" [ "project"; "assembly"; "index-scan" ] p;
  (* the assembly enforces presence in memory of the mayor *)
  match (List.nth (Helpers.algs p) 1 : Physical.t) with
  | Physical.Assembly { paths = [ { Physical.ap_out = "c.mayor"; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "expected the mayor assembly enforcer"

let test_q3_cost_close_to_q2 () =
  (* Q3 only adds assembling ~2 mayors: "three orders of magnitude" better
     than the filter-based plan *)
  let q3 = total (plan Q.q3) in
  let filter_based =
    total (plan ~options:(Options.disable "collapse-index-scan" Options.default) Q.q3)
  in
  Alcotest.(check bool) "cheap" true (q3 < 1.0);
  Alcotest.(check bool) "orders of magnitude" true (filter_based > 100.0 *. q3)

let test_q3_required_props_respected () =
  (* demanding the city in memory at the root must still be satisfied *)
  let required = Physprop.in_memory [ "c" ] in
  let p = plan ~required Q.q3 in
  Alcotest.(check bool) "plan exists" true (total p > 0.0)

(* ------------------------------------------------------------------ *)
(* Query 4 (Figures 12-13, Table 3)                                     *)

let test_q4_fig12_shape () =
  let p = plan Q.q4 in
  Helpers.check_shape "figure 12" [ "filter"; "assembly"; "unnest"; "index-scan" ] p;
  match p.Engine.alg with
  | Physical.Filter [ a ] ->
    Alcotest.(check bool) "name filter on top" true (Pred.bindings [ a ] = [ "e" ])
  | _ -> Alcotest.fail "expected the Fred filter on top"

let test_q4_uses_only_time_index () =
  let p = plan Q.q4 in
  let indexes =
    List.filter_map
      (function Physical.Index_scan { index; _ } -> Some index | _ -> None)
      (Helpers.algs p)
  in
  Alcotest.(check (list string)) "only the time index" [ "tasks_time" ] indexes

let test_q4_table3_orderings () =
  let cost_with ixs =
    let c = OC.catalog () in
    List.iter (Catalog.add_index c) ixs;
    total (Opt.plan_exn (Opt.optimize c Q.q4))
  in
  let none = cost_with [] in
  let time_only = cost_with [ OC.idx_tasks_time ] in
  let name_only = cost_with [ OC.idx_employees_name ] in
  let both = cost_with [ OC.idx_tasks_time; OC.idx_employees_name ] in
  Alcotest.(check (float 1e-6)) "both == time only" time_only both;
  Alcotest.(check bool) "time best" true (time_only < name_only);
  Alcotest.(check bool) "name beats none" true (name_only < none)

(* ------------------------------------------------------------------ *)
(* General behaviour                                                    *)

let test_optimization_time () =
  (* the paper targets < 1s on a 1993 workstation; we are far below *)
  let o = Opt.optimize (cat ()) Q.q1 in
  Alcotest.(check bool) "sub-second" true (o.Opt.opt_seconds < 1.0)

let test_ill_formed_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Opt.optimize (cat ()) (Logical.get ~coll:"Nope" ~binding:"x"));
       false
     with Invalid_argument _ -> true)

let test_pruning_equivalence () =
  List.iter
    (fun (name, q) ->
      let on = Opt.cost (Opt.optimize ~options:{ Options.default with Options.pruning = true } (cat ()) q) in
      let off = Opt.cost (Opt.optimize ~options:{ Options.default with Options.pruning = false } (cat ()) q) in
      Alcotest.(check (float 1e-6)) (name ^ ": pruning preserves optimum") (Cost.total off)
        (Cost.total on))
    Q.all

let test_guided_equivalence () =
  (* the guided (promise-ordered, cost-bounded) search must find winners
     with exactly the exhaustive winner's cost, on every workload query,
     against both the bare and the indexed catalog, with and without a
     wide join chain in the mix *)
  let queries = Q.all @ [ ("chain6", Q.join_chain 6) ] in
  List.iter
    (fun (cname, mk_cat) ->
      List.iter
        (fun (name, q) ->
          let exhaustive = Opt.cost (Opt.optimize (mk_cat ()) q) in
          let guided =
            Opt.cost
              (Opt.optimize ~options:(Options.with_guided Options.default) (mk_cat ()) q)
          in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s on %s catalog: guided == exhaustive winner cost" name cname)
            (Cost.total exhaustive) (Cost.total guided))
        queries)
    [ ("bare", OC.catalog); ("indexed", OC.catalog_with_indexes) ]

let test_rule_subsets_never_improve () =
  List.iter
    (fun rule ->
      let base = Cost.total (Opt.cost (Opt.optimize (cat ()) Q.q1)) in
      let restricted =
        Cost.total (Opt.cost (Opt.optimize ~options:(Options.disable rule Options.default) (cat ()) Q.q1))
      in
      Alcotest.(check bool)
        (Printf.sprintf "disabling %s cannot improve the plan" rule)
        true
        (restricted >= base -. 1e-9))
    [ "join-commute"; "mat-to-join"; "join-assoc"; "select-push-join"; "mat-push-join";
      "collapse-index-scan"; "pointer-join" ]

let test_explain_output () =
  let o = Opt.optimize (cat ()) Q.q2 in
  let s = Opt.explain o in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions index scan" true (contains s "Index Scan Cities");
  Alcotest.(check bool) "mentions cost" true (contains s "anticipated cost")

let test_heuristic_guidance () =
  (* seeding the search with the greedy plan's cost prunes but must not
     change the optimum *)
  let c = cat () in
  let unseeded = Opt.optimize c Q.q4 in
  (match Oodb_baselines.Greedy.optimize c Q.q4 with
  | Error m -> Alcotest.fail m
  | Ok g ->
    let seeded =
      Opt.optimize ~initial_limit:(Cost.add g.Engine.cost (Cost.cpu 1e-6)) c Q.q4
    in
    Alcotest.(check (float 1e-6)) "same optimum" (Cost.total (Opt.cost unseeded))
      (Cost.total (Opt.cost seeded));
    Alcotest.(check bool) "no extra work" true
      (seeded.Opt.stats.Engine.candidates <= unseeded.Opt.stats.Engine.candidates));
  (* an unachievably low limit yields no plan *)
  let starved = Opt.optimize ~initial_limit:(Oodb_cost.Cost.cpu 1e-9) c Q.q4 in
  Alcotest.(check bool) "limit respected" true (starved.Opt.plan = None)

let test_set_operators_optimize_and_run () =
  let db = Lazy.force Helpers.small_db in
  let dcat = Oodb_exec.Db.catalog db in
  let pop cmp v b =
    Logical.select [ Pred.atom cmp (Pred.Field (b, "population")) (Pred.Const (Value.Int v)) ]
      (Logical.get ~coll:"Cities" ~binding:b)
  in
  let lo () = pop Pred.Le 60_000 "c" and hi () = pop Pred.Ge 30_000 "c" in
  let run q = Helpers.run_rows db (Opt.plan_exn (Opt.optimize dcat q)) in
  let n_lo = List.length (run (lo ())) and n_hi = List.length (run (hi ())) in
  let n_union = List.length (run (Logical.union (lo ()) (hi ()))) in
  let n_inter = List.length (run (Logical.intersect (lo ()) (hi ()))) in
  let n_diff = List.length (run (Logical.difference (lo ()) (hi ()))) in
  Alcotest.(check int) "inclusion-exclusion" (n_lo + n_hi) (n_union + n_inter);
  Alcotest.(check int) "difference" (n_lo - n_inter) n_diff;
  Alcotest.(check bool) "overlapping ranges" true (n_inter > 0)

let test_cross_product () =
  let db = Lazy.force Helpers.small_db in
  let dcat = Oodb_exec.Db.catalog db in
  let q =
    Logical.cross
      (Logical.get ~coll:"Countries" ~binding:"n")
      (Logical.get ~coll:"Capitals" ~binding:"k")
  in
  let rows = Helpers.run_rows db (Opt.plan_exn (Opt.optimize dcat q)) in
  let card coll = Oodb_storage.Store.cardinality (Oodb_exec.Db.store db) ~coll in
  Alcotest.(check int) "product cardinality" (card "Countries" * card "Capitals")
    (List.length rows)

let deep_query =
  (* four materialize links and three predicates: a larger closure than
     any paper query exercises *)
  Logical.get ~coll:"Cities" ~binding:"c"
  |> Logical.mat ~src:"c" ~field:"mayor"
  |> Logical.mat ~src:"c" ~field:"country"
  |> Logical.mat ~src:"c.country" ~field:"president"
  |> Logical.mat ~src:"c.country" ~field:"capital"
  |> Logical.select
       [ Pred.atom Pred.Ge (Pred.Field ("c.mayor", "age")) (Pred.Const (Value.Int 30));
         Pred.atom Pred.Le (Pred.Field ("c.country.president", "age")) (Pred.Const (Value.Int 70));
         Pred.atom Pred.Ge (Pred.Field ("c.country.capital", "population")) (Pred.Const (Value.Int 20_000)) ]
  |> Logical.project [ { Logical.p_expr = Pred.Field ("c", "name"); p_name = "city" } ]

let test_deep_path_stress () =
  let o = Opt.optimize (cat ()) deep_query in
  (* the paper's goal: moderately complex queries in under a second *)
  Alcotest.(check bool) "sub-second optimization" true (o.Opt.opt_seconds < 1.0);
  Alcotest.(check bool) "substantial closure" true (o.Opt.stats.Engine.mexprs > 100);
  let db = Lazy.force Helpers.small_db in
  let dcat = Oodb_exec.Db.catalog db in
  let full = Opt.plan_exn (Opt.optimize dcat deep_query) in
  let naive = Opt.plan_exn (Oodb_baselines.Naive.optimize dcat deep_query) in
  Helpers.check_same_rows "deep chain equivalence" (Helpers.run_rows db naive)
    (Helpers.run_rows db full)

let test_unknown_rule_rejected () =
  Alcotest.check_raises "unknown rule" (Invalid_argument "Options.disable: unknown rule frobnicate")
    (fun () -> ignore (Options.disable "frobnicate" Options.default))

let () =
  Alcotest.run "optimizer"
    [ ( "query1",
        [ Alcotest.test_case "figure 6 plan shape" `Quick test_q1_fig6_shape;
          Alcotest.test_case "figure 6 details" `Quick test_q1_fig6_details;
          Alcotest.test_case "figure 7 naive plan" `Quick test_q1_naive_is_fig7;
          Alcotest.test_case "table 2 cost ordering" `Quick test_q1_table2_ordering ] );
      ( "query2",
        [ Alcotest.test_case "collapse to index scan" `Quick test_q2_collapses_to_index_scan;
          Alcotest.test_case "figure 9 without the rule" `Quick test_q2_no_collapse_is_fig9;
          Alcotest.test_case "no index, same plan" `Quick test_q2_no_index_same_as_no_collapse ]
      );
      ( "query3",
        [ Alcotest.test_case "figure 10 enforcer plan" `Quick test_q3_enforcer_plan;
          Alcotest.test_case "three orders of magnitude" `Quick test_q3_cost_close_to_q2;
          Alcotest.test_case "explicit required properties" `Quick test_q3_required_props_respected
        ] );
      ( "query4",
        [ Alcotest.test_case "figure 12 plan shape" `Quick test_q4_fig12_shape;
          Alcotest.test_case "uses only the time index" `Quick test_q4_uses_only_time_index;
          Alcotest.test_case "table 3 orderings" `Quick test_q4_table3_orderings ] );
      ( "general",
        [ Alcotest.test_case "optimization time" `Quick test_optimization_time;
          Alcotest.test_case "ill-formed rejected" `Quick test_ill_formed_rejected;
          Alcotest.test_case "pruning preserves optimum" `Quick test_pruning_equivalence;
          Alcotest.test_case "guided preserves optimum" `Quick test_guided_equivalence;
          Alcotest.test_case "rule subsets never improve" `Quick test_rule_subsets_never_improve;
          Alcotest.test_case "explain output" `Quick test_explain_output;
          Alcotest.test_case "heuristic guidance seeding" `Quick test_heuristic_guidance;
          Alcotest.test_case "set operators end-to-end" `Quick test_set_operators_optimize_and_run;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          Alcotest.test_case "deep path stress" `Quick test_deep_path_stress;
          Alcotest.test_case "unknown rule rejected" `Quick test_unknown_rule_rejected ] ) ]
