(* Plan provenance and the why-not observatory.

   The load-bearing invariants:
   - the lineage-replay contract: re-optimizing with only the
     transformation rules recorded in the winner's derivation re-derives
     a plan of Cost.compare-equal cost, for every workload query, on
     both catalogs, under both the exhaustive and the guided search;
   - the three pinned death modes classify as themselves: a disabled
     merge-join is never-derived, the skewed-catalog file scan is
     derived-but-lost (with the io/cpu gap of the feedback-corrected
     index plan), and a hash join on the guided width-8 chain is pruned
     (and stays pruned — guided refusals are never second-guessed);
   - under exhaustive branch-and-bound a prune is a short-circuited
     cost comparison, so classify escalates it via replay to the true
     derived-but-lost gap;
   - the memo export is deterministic: two separate optimizations of
     the same query render bit-identical JSON;
   - provenance is invisible to everything downstream: plan-cache
     fingerprints ignore the flag, and with recording off the readers
     fail loudly (Error) rather than fabricating lineage. *)

module Json = Oodb_util.Json
module Cost = Oodb_cost.Cost
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Engine = Open_oodb.Model.Engine
module Trules = Open_oodb.Trules
module Db = Oodb_exec.Db
module Q = Oodb_workloads.Queries
module Datagen = Oodb_workloads.Datagen
module Trace = Oodb_obs.Trace
module Profile = Oodb_obs.Profile
module Feedback = Oodb_obs.Feedback
module Provenance = Oodb_obs.Provenance
module Fingerprint = Oodb_plancache.Fingerprint

let required = Physprop.empty

let skewed_db = lazy (Datagen.generate_skewed ~scale:0.05 ~buffer_pages:512 ())

(* ------------------------------------------------------------------ *)
(* Lineage side-tables                                                  *)

let test_lineage_basics () =
  let cat = OC.catalog_with_indexes () in
  let outcome = Opt.optimize cat Q.q1 in
  let memo = outcome.Opt.memo in
  Alcotest.(check bool) "provenance is on by default" true (Provenance.available outcome);
  let lins = Engine.lineages memo in
  Alcotest.(check bool) "lineage rows were recorded" true (List.length lins > 0);
  (* Every rule-produced mexpr has a parent, and the chain walks back to
     a root intern in finitely many hops. *)
  List.iter
    (fun (l : Engine.lineage) ->
      (match l.Engine.lin_rule with
      | Some _ ->
        Alcotest.(check bool) "rule-produced mexpr has a parent" true
          (l.Engine.lin_parent <> None)
      | None -> ());
      let chain = Engine.rule_chain memo l.Engine.lin_id in
      Alcotest.(check bool) "rule chain is finite" true (List.length chain <= List.length lins))
    lins;
  (* The candidate log saw at least one kept candidate per searched
     group, and the root goal has a recorded winner. *)
  Alcotest.(check bool) "candidate log non-empty" true
    (List.length (Engine.cand_records memo) > 0);
  (match Engine.winner_of memo outcome.Opt.root ~required with
  | Some w -> (
    match w.Engine.cr_disposition with
    | Engine.Kept c ->
      let plan = Opt.plan_exn outcome in
      Alcotest.(check int) "winner record carries the plan's cost" 0
        (Cost.compare c plan.Engine.cost)
    | _ -> Alcotest.fail "root winner not Kept")
  | None -> Alcotest.fail "no winner recorded for the root goal");
  Alcotest.(check int) "nothing dropped at the cap" 0 (Engine.provenance_dropped memo);
  Alcotest.(check bool) "stats count the rows" true
    (outcome.Opt.stats.Engine.prov_records > 0)

(* ------------------------------------------------------------------ *)
(* The lineage-replay invariant                                         *)

let test_lineage_replay () =
  let catalogs = [ ("indexed", OC.catalog_with_indexes ()); ("plain", OC.catalog ()) ] in
  let variants =
    [ ("exhaustive", Options.default); ("guided", Options.with_guided Options.default) ]
  in
  List.iter
    (fun (cname, cat) ->
      List.iter
        (fun (vname, options) ->
          List.iter
            (fun (qname, q) ->
              let label = Printf.sprintf "%s/%s/%s" qname cname vname in
              let outcome = Opt.optimize ~options cat q in
              let plan = Opt.plan_exn outcome in
              let chain = Provenance.replay_rules outcome ~required in
              (* Disable every transformation rule outside the winner's
                 recorded derivation; the winner must be re-derivable
                 from its own chain alone, at the same cost. *)
              let restricted =
                List.fold_left
                  (fun o name -> if List.mem name chain then o else Options.disable name o)
                  options Trules.names
              in
              let plan' = Opt.plan_exn (Opt.optimize ~options:restricted cat q) in
              Alcotest.(check int)
                (label ^ ": replayed chain re-derives an equal-cost winner")
                0
                (Cost.compare plan.Engine.cost plan'.Engine.cost))
            Q.all)
        variants)
    catalogs

let test_why_tree () =
  let cat = OC.catalog_with_indexes () in
  let outcome = Opt.optimize cat Q.q1 in
  match Provenance.why outcome ~required with
  | Error e -> Alcotest.fail ("why failed: " ^ e)
  | Ok step ->
    let plan = Opt.plan_exn outcome in
    Alcotest.(check int) "why root carries the winner's cost" 0
      (Cost.compare step.Provenance.ws_cost plan.Engine.cost);
    let rec count (s : Provenance.why_step) =
      1 + List.fold_left (fun n c -> n + count c) 0 s.Provenance.ws_children
    in
    let rec plan_nodes (p : Engine.plan) =
      1 + List.fold_left (fun n c -> n + plan_nodes c) 0 p.Engine.children
    in
    Alcotest.(check int) "why tree mirrors the plan tree" (plan_nodes plan) (count step);
    let rendered = Format.asprintf "%a" (fun ppf s -> Provenance.pp_why ppf s) step in
    Alcotest.(check bool) "transcript names a rule" true
      (String.length rendered > 0)

(* ------------------------------------------------------------------ *)
(* The three pinned death modes                                         *)

let verdict_of label cl =
  match cl with
  | Ok c -> c.Provenance.cl_verdict
  | Error e -> Alcotest.fail (label ^ ": classify failed: " ^ e)

let test_whynot_never_derived () =
  let cat = OC.catalog_with_indexes () in
  let options = Options.disable "merge-join" Options.default in
  let outcome = Opt.optimize ~options cat Q.q1 in
  let replay options = Opt.optimize ~options cat Q.q1 in
  match
    verdict_of "never-derived"
      (Provenance.classify ~options ~replay outcome (Provenance.Force_join "merge"))
  with
  | Provenance.Never_derived { rules; disabled } ->
    Alcotest.(check bool) "producing rule named" true (List.mem "merge-join" rules);
    Alcotest.(check bool) "disabled rule identified" true (List.mem "merge-join" disabled)
  | v -> Alcotest.fail ("expected never-derived, got " ^ Provenance.verdict_label v)

let test_whynot_derived_but_lost () =
  (* The PR-7 pinned plan flip, asked the other way around: after one
     harvested execution corrects the skewed statistics, the optimizer
     picks the index scan — so why not the file scan it used to pick?
     Answer: derived, completed, and lost on estimated cost. *)
  let db = Lazy.force skewed_db in
  let cat = Db.catalog db in
  let cold = Opt.plan_exn (Opt.optimize cat Q.fred) in
  Alcotest.(check bool) "cold plan full-scans" true
    (List.mem "file-scan" (List.map Helpers.alg_label (Helpers.algs cold)));
  let _, _, prof = Profile.run db cold in
  let store = Feedback.create cat in
  let harvested = Feedback.harvest store Options.default.Options.config cat prof in
  Alcotest.(check bool) "statistics harvested" true (harvested >= 2);
  let options = Feedback.install store Options.default in
  let outcome = Opt.optimize ~options cat Q.fred in
  Alcotest.(check bool) "corrected plan uses the index" true
    (List.mem "index-scan"
       (List.map Helpers.alg_label (Helpers.algs (Opt.plan_exn outcome))));
  let replay options = Opt.optimize ~options cat Q.fred in
  match
    verdict_of "derived-but-lost"
      (Provenance.classify ~options ~replay outcome (Provenance.Force_scan "Employees"))
  with
  | Provenance.Derived_but_lost { alt_cost; winner_cost; gap; _ } ->
    Alcotest.(check bool) "the losing subtree costs more" true
      (Cost.compare alt_cost winner_cost > 0);
    let r = gap.Cost.d_ratio in
    (* The estimate-based gap on this catalog measures ~6x (the
       measured-actuals gap in EXPERIMENTS.md is 11.6x); pin the order
       of magnitude, not the digit. *)
    Alcotest.(check bool)
      (Printf.sprintf "gap ratio %.1fx is a real gap" r)
      true
      (r > 2.0 && r < 50.0)
  | v -> Alcotest.fail ("expected derived-but-lost, got " ^ Provenance.verdict_label v)

let test_whynot_pruned () =
  let cat = OC.catalog_with_indexes () in
  let q = Q.join_chain 8 in
  let options = Options.with_guided Options.default in
  let outcome = Opt.optimize ~options cat q in
  let replay options = Opt.optimize ~options cat q in
  match
    verdict_of "pruned"
      (Provenance.classify ~options ~replay outcome (Provenance.Force_join "hash"))
  with
  | Provenance.Pruned_away { limit; mode; _ } ->
    (* Guided refusals are reported as refusals even though a replay
       closure was supplied — the escalation is exhaustive-mode only. *)
    Alcotest.(check bool) "a real bound was in force" true (Cost.is_finite limit);
    Alcotest.(check bool) "prune mode recorded" true
      (mode = "candidate" || mode = "subgoal")
  | v -> Alcotest.fail ("expected pruned, got " ^ Provenance.verdict_label v)

let test_whynot_escalation () =
  (* Under exhaustive branch-and-bound the merge join on q1 is cut off
     by the bound mid-derivation; classify must not report that
     short-circuit as the answer but replay without pruning and return
     the completed cost gap. *)
  let cat = OC.catalog_with_indexes () in
  let outcome = Opt.optimize cat Q.q1 in
  let replay options = Opt.optimize ~options cat Q.q1 in
  (match
     verdict_of "escalated"
       (Provenance.classify ~options:Options.default ~replay outcome
          (Provenance.Force_join "merge"))
   with
  | Provenance.Derived_but_lost { gap; _ } ->
    let r = gap.Cost.d_ratio in
    Alcotest.(check bool)
      (Printf.sprintf "escalated gap ratio %.2fx sane" r)
      true
      (r > 1.0 && r < 10.0)
  | v -> Alcotest.fail ("expected escalated derived-but-lost, got " ^ Provenance.verdict_label v));
  (* Without the replay closure the same question stays a prune/absence
     report — classify never re-optimizes on its own. *)
  match
    verdict_of "unescalated"
      (Provenance.classify ~options:Options.default outcome (Provenance.Force_join "merge"))
  with
  | Provenance.Derived_but_lost _ -> Alcotest.fail "escalated without a replay closure"
  | _ -> ()

let test_whynot_chosen () =
  let cat = OC.catalog_with_indexes () in
  let outcome = Opt.optimize cat Q.q1 in
  let plan = Opt.plan_exn outcome in
  let shape = Provenance.shape_of_alg plan.Engine.alg in
  match verdict_of "chosen" (Provenance.classify outcome shape) with
  | Provenance.Chosen { cost } ->
    Alcotest.(check int) "chosen at the winner's cost" 0 (Cost.compare cost plan.Engine.cost)
  | v -> Alcotest.fail ("expected chosen, got " ^ Provenance.verdict_label v)

(* ------------------------------------------------------------------ *)
(* Memo export                                                          *)

let test_memo_determinism () =
  let cat = OC.catalog_with_indexes () in
  let render () =
    let outcome = Opt.optimize cat Q.q2 in
    Json.to_string (Provenance.memo_json outcome ~required)
  in
  let a = render () and b = render () in
  Alcotest.(check bool) "two optimizations render bit-identical memo JSON" true
    (String.equal a b);
  let outcome = Opt.optimize cat Q.q2 in
  let dot = Provenance.memo_dot outcome ~required in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("dot contains " ^ needle) true (contains dot needle))
    [ "digraph memo"; "color=red"; "style=dashed" ]

(* ------------------------------------------------------------------ *)
(* Provenance off: loud failure, invisible to fingerprints              *)

let test_provenance_off () =
  let cat = OC.catalog_with_indexes () in
  let options = Options.without_provenance Options.default in
  let outcome = Opt.optimize ~options cat Q.q1 in
  Alcotest.(check bool) "not available" false (Provenance.available outcome);
  Alcotest.(check int) "no rows recorded" 0 outcome.Opt.stats.Engine.prov_records;
  (match Provenance.why outcome ~required with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "why fabricated lineage with provenance off");
  (match Provenance.classify ~options outcome (Provenance.Force_join "merge") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "classify fabricated a verdict with provenance off");
  (* The recording flag must not split the plan cache. *)
  let key options = Fingerprint.key ~catalog:cat ~options ~required Q.q1 in
  Alcotest.(check string) "fingerprint key ignores the provenance flag"
    (key Options.default)
    (key options)

(* ------------------------------------------------------------------ *)
(* Cost deltas and drop-count surfacing                                 *)

let test_cost_delta () =
  let winner = Cost.make ~io:1.0 ~cpu:1.0 in
  let loser = Cost.make ~io:3.0 ~cpu:2.0 in
  let d = Cost.delta ~winner ~loser in
  Alcotest.(check (float 1e-9)) "io gap" 2.0 d.Cost.d_io;
  Alcotest.(check (float 1e-9)) "cpu gap" 1.0 d.Cost.d_cpu;
  Alcotest.(check (float 1e-9)) "total gap" 3.0 d.Cost.d_total;
  Alcotest.(check (float 1e-9)) "ratio" 2.5 d.Cost.d_ratio

let test_trace_prov_dropped () =
  let tr = Trace.create () in
  Trace.sink tr (Engine.Group_created { group = 0 });
  let j = Trace.to_json ~prov_dropped:3 tr in
  (match Json.member "prov_dropped" j with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "prov_dropped missing from trace JSON");
  (match Json.member "prov_dropped_warning" j with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "prov_dropped_warning missing");
  (* No warning when nothing was dropped. *)
  match Json.member "prov_dropped_warning" (Trace.to_json tr) with
  | None -> ()
  | Some _ -> Alcotest.fail "warning present with zero drops"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "provenance"
    [ ( "lineage",
        [ Alcotest.test_case "side-tables and winner records" `Quick test_lineage_basics;
          Alcotest.test_case "replay invariant over the workload" `Slow test_lineage_replay;
          Alcotest.test_case "why tree mirrors the winner" `Quick test_why_tree ] );
      ( "why-not",
        [ Alcotest.test_case "never-derived under a disabled rule" `Quick
            test_whynot_never_derived;
          Alcotest.test_case "derived-but-lost on the skewed catalog" `Slow
            test_whynot_derived_but_lost;
          Alcotest.test_case "pruned under the guided chain-8 search" `Slow test_whynot_pruned;
          Alcotest.test_case "exhaustive prunes escalate via replay" `Quick
            test_whynot_escalation;
          Alcotest.test_case "the winner's own shape is chosen" `Quick test_whynot_chosen ] );
      ( "export",
        [ Alcotest.test_case "memo JSON is deterministic" `Quick test_memo_determinism ] );
      ( "isolation",
        [ Alcotest.test_case "off is loud and fingerprint-invisible" `Quick
            test_provenance_off ] );
      ( "surfacing",
        [ Alcotest.test_case "cost delta decomposition" `Quick test_cost_delta;
          Alcotest.test_case "trace JSON carries drop counts" `Quick test_trace_prov_dropped ] ) ]
