(* The Volcano engine is generic; exercise it through a deliberately tiny
   model (string leaves, one binary concatenation operator, a boolean
   "sorted" physical property) independent of the OODB instantiation. *)

module Toy = struct
  module Op = struct
    type t = Leaf of string | Cat

    let arity = function Leaf _ -> 0 | Cat -> 2

    let equal = ( = )

    let hash = Hashtbl.hash

    let pp ppf = function
      | Leaf s -> Format.fprintf ppf "leaf:%s" s
      | Cat -> Format.pp_print_string ppf "cat"
  end

  module Alg = struct
    type t = Scan of string | Sorted_scan of string | Concat | Sorter

    let pp ppf = function
      | Scan s -> Format.fprintf ppf "scan %s" s
      | Sorted_scan s -> Format.fprintf ppf "sorted-scan %s" s
      | Concat -> Format.pp_print_string ppf "concat"
      | Sorter -> Format.pp_print_string ppf "sorter"
  end

  module Lprop = struct
    type t = int (* size *)

    let pp = Format.pp_print_int
  end

  module Typ = struct
    type t = unit (* the toy model carries no schema to type *)

    let equal () () = true

    let pp ppf () = Format.pp_print_string ppf "()"
  end

  module Pprop = struct
    type t = bool (* sorted? *)

    let equal = Bool.equal

    let hash = Hashtbl.hash

    let satisfies ~delivered ~required = delivered || not required

    let pp ppf b = Format.pp_print_string ppf (if b then "sorted" else "any")
  end

  module Cost = struct
    type t = float

    let zero = 0.0

    let add = ( +. )

    let sub = ( -. )

    let slack = 1e-9

    let compare = Float.compare

    let infinite = Float.infinity

    let pp = Format.pp_print_float
  end
end

module E = Volcano.Make (Toy)

let derive_lprop op inputs =
  match (op : Toy.Op.t) with
  | Toy.Op.Leaf s -> String.length s
  | Toy.Op.Cat -> List.fold_left ( + ) 0 inputs

(* cat (a, b) => cat (b, a) *)
let commute =
  { E.t_name = "commute";
    t_apply =
      (fun _ctx m ->
        match m.E.mop, m.E.minputs with
        | Toy.Op.Cat, [ l; r ] -> [ E.Node (Toy.Op.Cat, [ E.Ref r; E.Ref l ]) ]
        | _ -> []) }

(* cat (a, b) => a : a lossy rule used to exercise group merging *)
let left_wins =
  { E.t_name = "left-wins";
    t_apply =
      (fun _ctx m ->
        match m.E.mop, m.E.minputs with
        | Toy.Op.Cat, [ l; _ ] -> [ E.Ref l ]
        | _ -> []) }

let scan_cost = 10.0

let sorted_scan_cost = 25.0

let sorter_cost = 8.0

let impl_leaf =
  { E.i_name = "impl-leaf";
    i_promise = 10;
    i_apply =
      (fun _ctx ~required m ->
        match m.E.mop with
        | Toy.Op.Leaf s ->
          ignore required;
          [ { E.cand_alg = Toy.Alg.Scan s;
              cand_inputs = [];
              cand_cost = scan_cost;
              cand_delivers = false };
            { E.cand_alg = Toy.Alg.Sorted_scan s;
              cand_inputs = [];
              cand_cost = sorted_scan_cost;
              cand_delivers = true } ]
        | Toy.Op.Cat -> []) }

let impl_cat =
  { E.i_name = "impl-cat";
    i_promise = 5;
    i_apply =
      (fun _ctx ~required m ->
        match m.E.mop, m.E.minputs with
        | Toy.Op.Cat, [ l; r ] ->
          (* concatenation preserves nothing: it cannot deliver sorted *)
          ignore required;
          [ { E.cand_alg = Toy.Alg.Concat;
              cand_inputs = [ (l, false); (r, false) ];
              cand_cost = 1.0;
              cand_delivers = false } ]
        | _ -> []) }

let sorter =
  { E.e_name = "sorter";
    e_apply =
      (fun _ctx ~required _g ->
        if required then [ (Toy.Alg.Sorter, false, sorter_cost) ] else []) }

let spec ?(trules = [ commute ]) () =
  { E.derive_lprop;
    transformations = trules;
    implementations = [ impl_leaf; impl_cat ];
    enforcers = [ sorter ] }

let leaf s = E.Expr (Toy.Op.Leaf s, [])

let cat a b = E.Expr (Toy.Op.Cat, [ a; b ])

let plan_cost r = match r.E.plan with Some p -> p.E.cost | None -> nan


(* ------------------------------------------------------------------ *)

let test_leaf_plan () =
  let r = E.run (spec ()) (leaf "ab") ~required:false in
  Alcotest.(check (float 1e-9)) "cheapest scan" scan_cost (plan_cost r);
  Alcotest.(check int) "one group" 1 r.E.stats.E.groups

let test_required_property () =
  (* sorted required: sorted-scan (25) loses to scan+sorter (18) *)
  let r = E.run (spec ()) (leaf "ab") ~required:true in
  Alcotest.(check (float 1e-9)) "scan + sorter" (scan_cost +. sorter_cost) (plan_cost r);
  match r.E.plan with
  | Some { E.alg = Toy.Alg.Sorter; children = [ { E.alg = Toy.Alg.Scan _; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "expected sorter over scan"

let test_enforcer_vs_native () =
  (* with the enforcer disabled, the sorted scan is the only way *)
  let r = E.run ~disabled:[ "sorter" ] (spec ()) (leaf "ab") ~required:true in
  Alcotest.(check (float 1e-9)) "sorted scan" sorted_scan_cost (plan_cost r)

let test_unachievable_property () =
  let r =
    E.run ~disabled:[ "sorter" ]
      { (spec ()) with E.implementations = [ impl_cat;
          { impl_leaf with E.i_apply = (fun ctx ~required m ->
                List.filter (fun c -> c.E.cand_alg <> Toy.Alg.Sorted_scan "ab")
                  (impl_leaf.E.i_apply ctx ~required m)) } ] }
      (leaf "ab") ~required:true
  in
  Alcotest.(check bool) "no plan" true (r.E.plan = None)

let test_closure_dedup () =
  let r = E.run (spec ()) (cat (leaf "a") (leaf "b")) ~required:false in
  (* groups: a, b, root; root holds cat(a,b) and cat(b,a) only *)
  Alcotest.(check int) "groups" 3 r.E.stats.E.groups;
  Alcotest.(check int) "mexprs" 4 r.E.stats.E.mexprs;
  Alcotest.(check int) "commute fired once per orientation" 1 r.E.stats.E.trule_fired

let test_closure_terminates_nested () =
  let e = cat (cat (leaf "a") (leaf "b")) (cat (leaf "c") (leaf "d")) in
  let r = E.run (spec ()) e ~required:false in
  Alcotest.(check bool) "terminates with finite memo" true (r.E.stats.E.mexprs < 50)

let test_group_merge () =
  (* left-wins asserts cat(a,b) == a: the root group merges with a's *)
  let r = E.run (spec ~trules:[ left_wins ] ()) (cat (leaf "aa") (leaf "b")) ~required:false in
  (* the root group now contains the leaf: a bare scan is a valid plan *)
  Alcotest.(check (float 1e-9)) "scan through merged group" scan_cost (plan_cost r);
  match r.E.plan with
  | Some { E.alg = Toy.Alg.Scan "aa"; _ } -> ()
  | _ -> Alcotest.fail "expected scan of aa after merge"

let test_disabled_rule () =
  let r = E.run ~disabled:[ "commute" ] (spec ()) (cat (leaf "a") (leaf "b")) ~required:false in
  Alcotest.(check int) "no commuted form" 3 r.E.stats.E.mexprs

let test_pruning_equivalence () =
  let e = cat (cat (leaf "a") (leaf "b")) (cat (leaf "c") (leaf "d")) in
  let with_pruning = E.run ~pruning:true (spec ()) e ~required:true in
  let without = E.run ~pruning:false (spec ()) e ~required:true in
  Alcotest.(check (float 1e-9)) "same optimum" (plan_cost without) (plan_cost with_pruning)

let test_memo_hits () =
  (* shared sub-expression: the same leaf appears twice *)
  let e = cat (leaf "a") (leaf "a") in
  let r = E.run (spec ()) e ~required:false in
  Alcotest.(check int) "leaf group shared" 2 r.E.stats.E.groups;
  Alcotest.(check bool) "physical memo reused" true (r.E.stats.E.phys_memo_hits > 0)

let test_lprops () =
  let e = cat (leaf "abc") (leaf "de") in
  let r = E.run (spec ()) e ~required:false in
  Alcotest.(check int) "derived size" 5 (E.group_lprop r.E.ctx r.E.root)

let test_memo_dump () =
  let r = E.run (spec ()) (cat (leaf "a") (leaf "b")) ~required:false in
  let s = Format.asprintf "%a" E.pp_memo r.E.ctx in
  Alcotest.(check bool) "dump mentions cat" true (String.length s > 0)

let test_packed_ids () =
  List.iter
    (fun k ->
      let id = Volcano.Id.make k 37 in
      Alcotest.(check int) "index survives the round trip" 37 (Volcano.Id.to_idx id);
      Alcotest.(check bool) "kind survives the round trip" true (Volcano.Id.kind_of id = k))
    [ Volcano.Id.Group; Volcano.Id.Mexpr; Volcano.Id.Phys ];
  (* ids of distinct kinds never collide, whatever the index *)
  Alcotest.(check bool) "kind tag separates equal indexes" false
    (Volcano.Id.make Volcano.Id.Group 5 = Volcano.Id.make Volcano.Id.Mexpr 5);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Volcano.Id.make: index overflow") (fun () ->
      ignore (Volcano.Id.make Volcano.Id.Group (-1)));
  Alcotest.check_raises "overflowing index rejected"
    (Invalid_argument "Volcano.Id.make: index overflow") (fun () ->
      ignore (Volcano.Id.make Volcano.Id.Group max_int))

let test_rule_counters_sorted () =
  let e = cat (cat (leaf "a") (leaf "b")) (cat (leaf "c") (leaf "d")) in
  let r = E.run (spec ()) e ~required:true in
  let counters = E.rule_counters r.E.ctx in
  let names = List.map (fun (n, _, _) -> n) counters in
  Alcotest.(check (list string)) "sorted by rule name" (List.sort String.compare names) names;
  Alcotest.(check bool) "all exercised rules present" true
    (List.for_all (fun n -> List.mem n names) [ "commute"; "impl-leaf"; "impl-cat"; "sorter" ]);
  (* determinism: an identical run reports identical counters *)
  let r' = E.run (spec ()) e ~required:true in
  Alcotest.(check bool) "bit-identical across identical runs" true
    (counters = E.rule_counters r'.E.ctx)

let test_guided_equivalence () =
  (* guided search (promise-ordered rules, cost-sorted candidates,
     bound-propagating subgoals) must return a winner with exactly the
     exhaustive winner's cost, for every required-property goal *)
  let exprs =
    [ leaf "ab";
      cat (leaf "a") (leaf "b");
      cat (cat (leaf "a") (leaf "b")) (cat (leaf "c") (leaf "d"));
      cat (leaf "a") (cat (leaf "bc") (leaf "d")) ]
  in
  List.iter
    (fun required ->
      List.iter
        (fun e ->
          let exhaustive = E.run ~guided:false (spec ()) e ~required in
          let guided = E.run ~guided:true (spec ()) e ~required in
          Alcotest.(check (float 0.0)) "identical winner cost" (plan_cost exhaustive)
            (plan_cost guided);
          Alcotest.(check bool) "guided expands no more candidates" true
            (guided.E.stats.E.candidates <= exhaustive.E.stats.E.candidates))
        exprs)
    [ false; true ]

let test_guided_prunes_subgoals () =
  (* with a finite initial limit the guided search's bound propagation
     refuses dominated subgoals outright *)
  let e = cat (cat (leaf "a") (leaf "b")) (cat (leaf "c") (leaf "d")) in
  let exhaustive = E.run ~guided:false (spec ()) e ~required:true in
  let guided = E.run ~guided:true (spec ()) e ~required:true in
  Alcotest.(check (float 0.0)) "identical winner cost" (plan_cost exhaustive) (plan_cost guided);
  Alcotest.(check bool) "guided records pruning work" true
    (guided.E.stats.E.pruned_candidates + guided.E.stats.E.pruned_subgoals > 0)

let () =
  Alcotest.run "volcano"
    [ ( "search",
        [ Alcotest.test_case "leaf plan" `Quick test_leaf_plan;
          Alcotest.test_case "goal-directed property search" `Quick test_required_property;
          Alcotest.test_case "enforcer vs native" `Quick test_enforcer_vs_native;
          Alcotest.test_case "unachievable property" `Quick test_unachievable_property;
          Alcotest.test_case "pruning equivalence" `Quick test_pruning_equivalence;
          Alcotest.test_case "physical memoization" `Quick test_memo_hits ] );
      ( "memo",
        [ Alcotest.test_case "closure dedup" `Quick test_closure_dedup;
          Alcotest.test_case "nested closure terminates" `Quick test_closure_terminates_nested;
          Alcotest.test_case "group merging" `Quick test_group_merge;
          Alcotest.test_case "rule disabling" `Quick test_disabled_rule;
          Alcotest.test_case "logical property derivation" `Quick test_lprops;
          Alcotest.test_case "memo dump" `Quick test_memo_dump ] );
      ( "representation",
        [ Alcotest.test_case "packed id round trips" `Quick test_packed_ids;
          Alcotest.test_case "rule counters sorted & deterministic" `Quick
            test_rule_counters_sorted ] );
      ( "guided",
        [ Alcotest.test_case "guided == exhaustive winner cost" `Quick test_guided_equivalence;
          Alcotest.test_case "guided prunes dominated work" `Quick test_guided_prunes_subgoals ] ) ]
