(* Whole-system property tests: randomized queries over the generated
   schema, executed through every optimizer configuration, must agree. *)

module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Cost = Oodb_cost.Cost
module Db = Oodb_exec.Db
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Naive = Oodb_baselines.Naive
module Greedy = Oodb_baselines.Greedy

let db = Lazy.force Helpers.small_db

let cat = Db.catalog db

(* ------------------------------------------------------------------ *)
(* Random query generator over the paper's schema                       *)

(* A pipeline description: a base range plus optional links and
   predicates, assembled into a well-formed logical query. *)

type base = B_cities | B_employees | B_tasks

type genq = {
  g_base : base;
  g_links : int; (* how many Mat links to add, 0-2 *)
  g_preds : (int * int) list; (* (predicate picker, constant picker) *)
  g_project : bool;
}

let gen_query =
  let open QCheck2.Gen in
  let* g_base = oneofl [ B_cities; B_employees; B_tasks ] in
  let* g_links = int_bound 2 in
  let* g_preds = list_size (int_bound 3) (pair (int_bound 5) (int_bound 30)) in
  let* g_project = bool in
  return { g_base; g_links; g_preds; g_project }

(* Build the logical query; returns the expression and the atoms it could
   use (choice driven by the generator's integers). *)
let build q =
  let str s = Pred.Const (Value.Str s) in
  let num i = Pred.Const (Value.Int i) in
  let base_tree, links, preds =
    match q.g_base with
    | B_cities ->
      ( Logical.get ~coll:"Cities" ~binding:"c",
        [ ("c", "mayor"); ("c", "country") ],
        [ (fun k -> Pred.atom Pred.Eq (Pred.Field ("c.mayor", "name")) (str (Printf.sprintf "pname_%d" k)));
          (fun k -> Pred.atom Pred.Ge (Pred.Field ("c", "population")) (num (k * 1000)));
          (fun k -> Pred.atom Pred.Le (Pred.Field ("c.mayor", "age")) (num (20 + k)));
          (fun _ -> Pred.atom Pred.Eq (Pred.Field ("c.mayor", "name")) (str "Joe"));
          (fun k -> Pred.atom Pred.Ne (Pred.Field ("c", "name")) (str (Printf.sprintf "city_%d" k)));
          (fun k -> Pred.atom Pred.Gt (Pred.Field ("c.country", "name")) (str (Printf.sprintf "country_%d" (k mod 4))))
        ] )
    | B_employees ->
      ( Logical.get ~coll:"Employees" ~binding:"e",
        [ ("e", "dept"); ("e", "job") ],
        [ (fun _ -> Pred.atom Pred.Eq (Pred.Field ("e", "name")) (str "Fred"));
          (fun k -> Pred.atom Pred.Ge (Pred.Field ("e", "age")) (num (20 + k)));
          (fun k -> Pred.atom Pred.Eq (Pred.Field ("e.dept", "floor")) (num ((k mod 10) + 1)));
          (fun _ -> Pred.atom Pred.Eq (Pred.Field ("e.dept.plant", "location")) (str "Dallas"));
          (fun k -> Pred.atom Pred.Le (Pred.Field ("e", "salary")) (Pred.Const (Value.Float (20000.0 +. float_of_int (k * 2000)))));
          (fun k -> Pred.atom Pred.Eq (Pred.Field ("e.job", "level")) (num (k mod 10))) ] )
    | B_tasks ->
      ( Logical.get ~coll:"Tasks" ~binding:"t",
        [],
        [ (fun k -> Pred.atom Pred.Eq (Pred.Field ("t", "time")) (num ((k mod 50) + 1)));
          (fun _ -> Pred.atom Pred.Eq (Pred.Field ("e", "name")) (str "Fred"));
          (fun k -> Pred.atom Pred.Ge (Pred.Field ("e", "age")) (num (20 + k)));
          (fun k -> Pred.atom Pred.Le (Pred.Field ("t", "time")) (num ((k mod 50) + 1)));
          (fun k -> Pred.atom Pred.Ne (Pred.Field ("e", "name")) (str (Printf.sprintf "ename_%d" k)));
          (fun k -> Pred.atom Pred.Gt (Pred.Field ("t", "name")) (str (Printf.sprintf "task_%d" k))) ] )
  in
  (* attach links *)
  let tree =
    match q.g_base with
    | B_tasks ->
      (* tasks always get the unnest + mat pipeline so member predicates
         are meaningful *)
      base_tree
      |> Logical.unnest ~out:"m" ~src:"t" ~field:"team_members"
      |> Logical.mat_ref ~out:"e" ~src:"m"
    | B_cities | B_employees ->
      List.fold_left
        (fun tree (src, field) -> Logical.mat ~src ~field tree)
        base_tree
        (List.filteri (fun i _ -> i < q.g_links) links)
  in
  (* e.dept.plant needs its own link when the Dallas predicate fires *)
  let needs_plant =
    q.g_base = B_employees && q.g_links >= 1
    && List.exists (fun (p, _) -> p mod 6 = 3) q.g_preds
  in
  let tree =
    if needs_plant then Logical.mat ~src:"e.dept" ~field:"plant" tree else tree
  in
  let scope_ok atom =
    List.for_all (fun b -> List.mem b (Logical.scope tree)) (Pred.bindings [ atom ])
  in
  let atoms =
    q.g_preds
    |> List.map (fun (p, k) -> (List.nth preds (p mod List.length preds)) k)
    |> List.filter scope_ok
  in
  let tree = if atoms = [] then tree else Logical.select atoms tree in
  let tree =
    if q.g_project then
      let b = List.hd (Logical.scope tree) in
      Logical.project [ { Logical.p_expr = Pred.Field (b, "name"); p_name = "n" } ] tree
    else tree
  in
  match Logical.well_formed cat tree with
  | Ok () -> Some tree
  | Error _ -> None

(* ------------------------------------------------------------------ *)

let prop_optimizer_equals_naive =
  QCheck2.Test.make ~name:"optimized plan == naive plan results" ~count:60 gen_query (fun g ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q ->
        let full = Opt.plan_exn (Opt.optimize cat q) in
        let naive = Opt.plan_exn (Naive.optimize cat q) in
        Helpers.canon_rows (Helpers.run_rows db full)
        = Helpers.canon_rows (Helpers.run_rows db naive))

let prop_random_rule_subsets_sound =
  QCheck2.Test.make ~name:"random rule subsets produce equivalent plans" ~count:40
    QCheck2.Gen.(pair gen_query (list_size (int_bound 6) (oneofl Options.rule_names)))
    (fun (g, disabled) ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q ->
        let restricted =
          List.fold_left (fun o r -> Options.disable r o) Options.default disabled
        in
        let full = Opt.plan_exn (Opt.optimize cat q) in
        (* filter/scan/assembly/project/unnest must survive for a plan to
           exist at all; the naive-compatible core is never disabled here *)
        let core = [ "file-scan"; "filter"; "mat-assembly"; "alg-project"; "alg-unnest"; "assembly-enforcer"; "hash-setop" ] in
        let restricted =
          { restricted with
            Options.disabled = List.filter (fun r -> not (List.mem r core)) restricted.Options.disabled }
        in
        let alt = Opt.plan_exn (Opt.optimize ~options:restricted cat q) in
        Helpers.canon_rows (Helpers.run_rows db full)
        = Helpers.canon_rows (Helpers.run_rows db alt))

let prop_disabled_rules_never_cheaper =
  QCheck2.Test.make ~name:"disabling rules never lowers plan cost" ~count:40
    QCheck2.Gen.(pair gen_query (list_size (int_bound 4) (oneofl Open_oodb.Trules.names)))
    (fun (g, disabled) ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q ->
        let base = Cost.total (Opt.cost (Opt.optimize cat q)) in
        let opts = List.fold_left (fun o r -> Options.disable r o) Options.default disabled in
        let restricted = Cost.total (Opt.cost (Opt.optimize ~options:opts cat q)) in
        restricted >= base -. 1e-9)

let prop_pruning_sound =
  QCheck2.Test.make ~name:"branch-and-bound preserves the optimum" ~count:40 gen_query
    (fun g ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q ->
        let on = Cost.total (Opt.cost (Opt.optimize ~options:{ Options.default with Options.pruning = true } cat q)) in
        let off = Cost.total (Opt.cost (Opt.optimize ~options:{ Options.default with Options.pruning = false } cat q)) in
        Float.abs (on -. off) <= 1e-6 *. Float.max 1.0 off)

let prop_greedy_sound =
  QCheck2.Test.make ~name:"greedy plans compute the same results" ~count:40 gen_query
    (fun g ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q -> (
        match Greedy.optimize cat q with
        | Error _ -> QCheck2.assume_fail ()
        | Ok greedy ->
          let full = Opt.plan_exn (Opt.optimize cat q) in
          Helpers.canon_rows (Helpers.run_rows db full)
          = Helpers.canon_rows (Helpers.run_rows db greedy)))

let prop_optimizer_never_worse_than_greedy =
  QCheck2.Test.make ~name:"cost-based never estimates worse than greedy" ~count:40 gen_query
    (fun g ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q -> (
        match Greedy.optimize cat q with
        | Error _ -> QCheck2.assume_fail ()
        | Ok greedy ->
          Cost.total (Opt.cost (Opt.optimize cat q))
          <= Cost.total greedy.Open_oodb.Model.Engine.cost +. 1e-9))

(* ------------------------------------------------------------------ *)
(* Typed algebra vs execution: the schema the typechecker infers for a
   query must describe the rows the engine actually produces — same
   column names, and every value inhabiting its static column type —
   across batch sizes (batch 1 degenerates to tuple-at-a-time; batch 64
   exercises the vectorized path). Reuses the plan-cache fuzz corpus so
   inference is checked over the same ~200-query population whose
   fingerprints are already known to be stable. *)

module Typing = Oodb_algebra.Typing

let check_rows_match_schema ~seed ~batch schema rows =
  let want = List.sort compare (List.map fst schema) in
  List.iteri
    (fun i row ->
      let got = List.sort compare (List.map fst row) in
      if got <> want then
        Alcotest.failf
          "seed %d batch %d row %d: columns %s but inferred schema %s" seed
          batch i
          (String.concat "," got)
          (String.concat "," want);
      List.iter
        (fun (col, v) ->
          let ty = List.assoc col schema in
          if not (Typing.value_matches ty v) then
            Alcotest.failf
              "seed %d batch %d row %d: column %s holds %s, outside its inferred type %s"
              seed batch i col (Value.to_string v)
              (Format.asprintf "%a" Typing.pp_col_ty ty))
        row)
    rows

let test_typing_matches_execution () =
  for seed = 1 to Helpers.Fuzz.n_fuzz do
    let q = Helpers.Fuzz.gen_expr ~seed ~root_name:"x" in
    let schema =
      match Typing.output_schema cat q with
      | Ok s -> s
      | Error m -> Alcotest.failf "seed %d: inference failed: %s" seed m
    in
    List.iter
      (fun batch ->
        let options = Options.with_batch_size batch Options.default in
        let plan = Opt.plan_exn (Opt.optimize ~options cat q) in
        let rows =
          Helpers.Executor.run ~verify:true ~config:options.Options.config db
            plan
        in
        check_rows_match_schema ~seed ~batch schema rows)
      [ 1; 64 ]
  done

let prop_deterministic =
  QCheck2.Test.make ~name:"optimization is deterministic" ~count:30 gen_query (fun g ->
      match build g with
      | None -> QCheck2.assume_fail ()
      | Some q ->
        let p1 = Opt.plan_exn (Opt.optimize cat q) in
        let p2 = Opt.plan_exn (Opt.optimize cat q) in
        Helpers.shape p1 = Helpers.shape p2
        && Cost.total p1.Open_oodb.Model.Engine.cost = Cost.total p2.Open_oodb.Model.Engine.cost)

let () =
  Alcotest.run "properties"
    [ ( "plan-equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_optimizer_equals_naive;
            prop_random_rule_subsets_sound;
            prop_greedy_sound ] );
      ( "cost-model",
        List.map QCheck_alcotest.to_alcotest
          [ prop_disabled_rules_never_cheaper;
            prop_pruning_sound;
            prop_optimizer_never_worse_than_greedy;
            prop_deterministic ] );
      ( "typed-algebra",
        [ Alcotest.test_case "inferred schema matches executed rows (batch 1 and 64)"
            `Quick test_typing_matches_execution ] ) ]
