(* Shared fixtures and assertions for the test suite. *)

module Value = Oodb_storage.Value
module Engine = Open_oodb.Model.Engine
module Physical = Open_oodb.Physical
module Executor = Oodb_exec.Executor

(* A small generated database shared by tests that only read it. *)
let small_db = lazy (Oodb_workloads.Datagen.generate ~scale:0.01 ~buffer_pages:256 ())

(* A medium database for integration tests. *)
let medium_db = lazy (Oodb_workloads.Datagen.generate ~scale:0.05 ~buffer_pages:512 ())

let canon_rows rows =
  let canon_row row = List.sort (fun (a, _) (b, _) -> String.compare a b) row in
  rows |> List.map canon_row
  |> List.sort (fun r1 r2 ->
         List.compare
           (fun (k1, v1) (k2, v2) ->
             let c = String.compare k1 k2 in
             if c <> 0 then c else Value.compare v1 v2)
           r1 r2)

let rows_to_string rows =
  rows
  |> List.map (fun row ->
         row
         |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Value.to_string v))
         |> String.concat ", ")
  |> String.concat "\n"

let check_same_rows msg expected actual =
  let e = canon_rows expected and a = canon_rows actual in
  if e <> a then
    Alcotest.failf "%s: result sets differ\n--- expected (%d rows)\n%s\n--- actual (%d rows)\n%s"
      msg (List.length e) (rows_to_string e) (List.length a) (rows_to_string a)

(* Flatten a physical plan to its algorithm list, root first. *)
let rec algs (plan : Engine.plan) =
  plan.Engine.alg :: List.concat_map algs plan.Engine.children

let alg_label = function
  | Physical.File_scan _ -> "file-scan"
  | Physical.Index_scan _ -> "index-scan"
  | Physical.Filter _ -> "filter"
  | Physical.Hash_join _ -> "hash-join"
  | Physical.Merge_join _ -> "merge-join"
  | Physical.Pointer_join _ -> "pointer-join"
  | Physical.Assembly _ -> "assembly"
  | Physical.Alg_project _ -> "project"
  | Physical.Alg_unnest _ -> "unnest"
  | Physical.Hash_union -> "union"
  | Physical.Hash_intersect -> "intersect"
  | Physical.Hash_difference -> "difference"
  | Physical.Sort _ -> "sort"

let shape plan = List.map alg_label (algs plan)

let check_shape msg expected plan =
  Alcotest.(check (list string)) msg expected (shape plan)

let run_rows db plan = Executor.run db plan

let total_cost (plan : Engine.plan) = Oodb_cost.Cost.total plan.Engine.cost

(* ------------------------------------------------------------------ *)
(* Fuzz: random well-formed expressions over the workload schema       *)

(* Random queries are built as a root scan followed by a short random
   walk over the schema's reference graph (Mat steps whose availability
   depends on what is already in scope), at most one selection of 1-2
   atoms on in-scope scalar fields, and an optional terminal projection.
   Derived names all flow from the root binding name, so re-running the
   generator with the same seed and a different root name yields an
   alpha-renamed variant. The single-Select cap keeps the queries inside
   the territory where the rule set's closure is known to terminate:
   stacks of Selects make the split/merge transformations enumerate
   conjunct partitions without bound (the paper only validated
   termination on its own workload shapes).

   Shared between the plan-cache fingerprint tests and the typed-algebra
   property tests, so both exercise the same query population. *)
module Fuzz = struct
  module Prng = Oodb_util.Prng
  module Logical = Oodb_algebra.Logical
  module Pred = Oodb_algebra.Pred

  let refs_of = function
    | "Employee" -> [ ("dept", "Department"); ("job", "Job") ]
    | "Department" -> [ ("plant", "Plant") ]
    | "City" -> [ ("mayor", "Person"); ("country", "Country") ]
    | "Country" -> [ ("president", "Person"); ("capital", "Capital") ]
    | _ -> []

  let scalars_of = function
    | "Employee" -> [ ("name", `Str); ("age", `Int) ]
    | "Department" -> [ ("name", `Str); ("floor", `Int) ]
    | "Plant" -> [ ("name", `Str); ("location", `Str) ]
    | "Job" -> [ ("name", `Str); ("level", `Int) ]
    | "Person" -> [ ("name", `Str); ("age", `Int) ]
    | "City" -> [ ("name", `Str); ("population", `Int) ]
    | "Country" -> [ ("name", `Str) ]
    | "Capital" -> [ ("name", `Str); ("population", `Int) ]
    | "Task" -> [ ("name", `Str); ("time", `Int) ]
    | _ -> []

  let roots = [| ("Employees", "Employee"); ("Cities", "City"); ("Tasks", "Task");
                 ("Countries", "Country"); ("Departments", "Department") |]

  let str_pool = [| "Dallas"; "Joe"; "Fred"; "Austin" |]

  let cmps = [| Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge |]

  let gen_expr ~seed ~root_name =
    let rng = Prng.create seed in
    let coll, cls = Prng.pick rng roots in
    let expr = ref (Logical.get ~coll ~binding:root_name) in
    (* (binding, class) pairs whose fields are addressable *)
    let scope = ref [ (root_name, cls) ] in
    (* a Task's team members are references: unnest then materialize *)
    if cls = "Task" && Prng.bool rng then begin
      let m = root_name ^ "_m" and e = root_name ^ "_e" in
      expr :=
        !expr
        |> Logical.unnest ~out:m ~src:root_name ~field:"team_members"
        |> Logical.mat_ref ~out:e ~src:m;
      scope := (e, "Employee") :: !scope
    end;
    let random_atom () =
      let b, c = Prng.pick rng (Array.of_list !scope) in
      let f, ty = Prng.pick rng (Array.of_list (scalars_of c)) in
      let const =
        match ty with
        | `Int -> Pred.Const (Value.Int (Prng.int rng 200))
        | `Str -> Pred.Const (Value.Str (Prng.pick rng str_pool))
      in
      Pred.atom (Prng.pick rng cmps) (Pred.Field (b, f)) const
    in
    let mat_step () =
      let unused_refs =
        List.concat_map
          (fun (b, c) ->
            List.filter_map
              (fun (f, target) ->
                let out = b ^ "." ^ f in
                if List.mem_assoc out !scope then None else Some (b, f, out, target))
              (refs_of c))
          !scope
      in
      match unused_refs with
      | [] -> ()
      | refs ->
        let b, f, out, target = Prng.pick rng (Array.of_list refs) in
        expr := Logical.mat ~src:b ~field:f !expr;
        scope := (out, target) :: !scope
    in
    for _ = 1 to Prng.int rng 4 do mat_step () done;
    if Prng.bool rng then begin
      let atoms = List.init (1 + Prng.int rng 2) (fun _ -> random_atom ()) in
      expr := Logical.select atoms !expr
    end;
    for _ = 1 to Prng.int rng 2 do mat_step () done;
    if Prng.int rng 3 = 0 then begin
      let b, c = Prng.pick rng (Array.of_list !scope) in
      let f, _ = Prng.pick rng (Array.of_list (scalars_of c)) in
      expr :=
        Logical.project [ { Logical.p_expr = Pred.Field (b, f); p_name = b ^ "." ^ f } ] !expr
    end;
    !expr

  let n_fuzz = 200
end
