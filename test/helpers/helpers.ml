(* Shared fixtures and assertions for the test suite. *)

module Value = Oodb_storage.Value
module Engine = Open_oodb.Model.Engine
module Physical = Open_oodb.Physical
module Executor = Oodb_exec.Executor

(* A small generated database shared by tests that only read it. *)
let small_db = lazy (Oodb_workloads.Datagen.generate ~scale:0.01 ~buffer_pages:256 ())

(* A medium database for integration tests. *)
let medium_db = lazy (Oodb_workloads.Datagen.generate ~scale:0.05 ~buffer_pages:512 ())

let canon_rows rows =
  let canon_row row = List.sort (fun (a, _) (b, _) -> String.compare a b) row in
  rows |> List.map canon_row
  |> List.sort (fun r1 r2 ->
         List.compare
           (fun (k1, v1) (k2, v2) ->
             let c = String.compare k1 k2 in
             if c <> 0 then c else Value.compare v1 v2)
           r1 r2)

let rows_to_string rows =
  rows
  |> List.map (fun row ->
         row
         |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Value.to_string v))
         |> String.concat ", ")
  |> String.concat "\n"

let check_same_rows msg expected actual =
  let e = canon_rows expected and a = canon_rows actual in
  if e <> a then
    Alcotest.failf "%s: result sets differ\n--- expected (%d rows)\n%s\n--- actual (%d rows)\n%s"
      msg (List.length e) (rows_to_string e) (List.length a) (rows_to_string a)

(* Flatten a physical plan to its algorithm list, root first. *)
let rec algs (plan : Engine.plan) =
  plan.Engine.alg :: List.concat_map algs plan.Engine.children

let alg_label = function
  | Physical.File_scan _ -> "file-scan"
  | Physical.Index_scan _ -> "index-scan"
  | Physical.Filter _ -> "filter"
  | Physical.Hash_join _ -> "hash-join"
  | Physical.Merge_join _ -> "merge-join"
  | Physical.Pointer_join _ -> "pointer-join"
  | Physical.Assembly _ -> "assembly"
  | Physical.Alg_project _ -> "project"
  | Physical.Alg_unnest _ -> "unnest"
  | Physical.Hash_union -> "union"
  | Physical.Hash_intersect -> "intersect"
  | Physical.Hash_difference -> "difference"
  | Physical.Sort _ -> "sort"

let shape plan = List.map alg_label (algs plan)

let check_shape msg expected plan =
  Alcotest.(check (list string)) msg expected (shape plan)

let run_rows db plan = Executor.run db plan

let total_cost (plan : Engine.plan) = Oodb_cost.Cost.total plan.Engine.cost

(* ------------------------------------------------------------------ *)
(* Fuzz: random well-formed expressions over the workload schema.
   The generator itself lives in the scenario library; re-exported here
   so the plan-cache fingerprint tests, the typed-algebra property tests
   and the vectorized-executor differential tests keep drawing from one
   query population. *)
module Fuzz = Oodb_scenario.Corpus
