(* Tests for the static verifier (lib/verify): the plan linter, the memo
   consistency checker, cost sanity, and the rule-set analyzer. The
   negative cases hand-build deliberately broken plans and rule sets and
   check that the right violation class is reported. *)

module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module Pred = Oodb_algebra.Pred
module OC = Oodb_catalog.Open_oodb_catalog
module Config = Oodb_cost.Config
module Cost = Oodb_cost.Cost
module Estimator = Oodb_cost.Estimator
module Q = Oodb_workloads.Queries
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physical = Open_oodb.Physical
module Physprop = Open_oodb.Physprop
module PL = Open_oodb.Planlint
module Model = Open_oodb.Model
module Engine = Model.Engine
module Bset = Physprop.Bset
module V = Oodb_verify.Verify

let cat () = OC.catalog_with_indexes ()

let fred = Pred.Const (Value.Str "Fred")

(* ------------------------------------------------------------------ *)
(* Positive: every plan the optimizers produce lints clean, and every
   memo they build is consistent                                        *)

let check_clean label cat plan =
  (match V.plan cat plan with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "%s: plan lint:@.%a" label V.pp_violations vs);
  match V.plan_costs plan with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: plan costs:@.%a" label
      (Fmt.list ~sep:Fmt.cut V.pp_cost_violation)
      vs

let test_optimizer_plans_lint () =
  List.iter
    (fun (cname, cat) ->
      List.iter
        (fun (qname, q) ->
          let label = cname ^ "/" ^ qname in
          let outcome = Opt.optimize cat q in
          (match outcome.Opt.plan with
          | None -> Alcotest.failf "%s: no plan" label
          | Some p -> check_clean label cat p);
          match V.memo ~config:Config.default cat outcome.Opt.memo with
          | Ok () -> ()
          | Error vs ->
            Alcotest.failf "%s: %d memo violations, first: %a" label (List.length vs)
              V.pp_memo_violation (List.hd vs))
        Q.all)
    [ ("indexes", OC.catalog_with_indexes ()); ("no-indexes", OC.catalog ()) ]

let test_baseline_plans_lint () =
  let cat = cat () in
  List.iter
    (fun (qname, q) ->
      (match (Oodb_baselines.Naive.optimize cat q).Opt.plan with
      | None -> Alcotest.failf "naive/%s: no plan" qname
      | Some p -> check_clean ("naive/" ^ qname) cat p);
      match Oodb_baselines.Greedy.optimize cat q with
      | Ok p -> check_clean ("greedy/" ^ qname) cat p
      | Error _ -> () (* query shape outside the greedy strategy *))
    Q.all

(* ------------------------------------------------------------------ *)
(* Negative: hand-built broken plans                                    *)

let node ?(mem = []) ?order alg children =
  { Engine.alg;
    children;
    cost = Cost.zero;
    delivered = { Physprop.in_memory = Bset.of_list mem; order } }

let scan ?(coll = "Employees") ?(mem = true) binding =
  node
    (Physical.File_scan { coll; binding })
    []
    ~mem:(if mem then [ binding ] else [])

let expect_violation label pred p =
  match V.plan (cat ()) p with
  | Ok () -> Alcotest.failf "%s: lint unexpectedly clean" label
  | Error vs ->
    if not (List.exists pred vs) then
      Alcotest.failf "%s: expected violation missing, got:@.%a" label V.pp_violations vs

let test_out_of_scope () =
  (* a filter reading a binding no input introduces *)
  let p =
    node
      (Physical.Filter [ Pred.atom Pred.Eq (Pred.Field ("x", "name")) fred ])
      [ scan "e" ] ~mem:[ "e" ]
  in
  expect_violation "out-of-scope operand"
    (function PL.Out_of_scope { binding = "x"; _ } -> true | _ -> false)
    p

let test_not_in_memory () =
  (* unnest leaves t.team_members[] in scope as a bare reference; a
     filter reading m.name without assembling m first would make the
     executor raise — the presence-in-memory check catches it here *)
  let un =
    node
      (Physical.Alg_unnest { src = "t"; field = "team_members"; out = "m" })
      [ scan ~coll:"Tasks" "t" ]
      ~mem:[ "t" ]
  in
  let p =
    node
      (Physical.Filter [ Pred.atom Pred.Eq (Pred.Field ("m", "name")) fred ])
      [ un ] ~mem:[ "t" ]
  in
  expect_violation "non-materialized binding"
    (function PL.Not_in_memory { binding = "m"; _ } -> true | _ -> false)
    p

let test_trim_loses_memory () =
  (* the same violation via delivered properties: the scan materializes
     [e] but only promises a bare tuple, so the executor's trim demotes
     [e] to a reference before the filter reads it *)
  let p =
    node
      (Physical.Filter [ Pred.atom Pred.Eq (Pred.Field ("e", "name")) fred ])
      [ scan ~mem:false "e" ]
  in
  expect_violation "trimmed binding read"
    (function PL.Not_in_memory { binding = "e"; _ } -> true | _ -> false)
    p

let test_merge_join_needs_order () =
  let join l r =
    node
      (Physical.Merge_join
         { key_l = Pred.Field ("e1", "name");
           key_r = Pred.Field ("e2", "name");
           residual = [] })
      [ l; r ]
      ~mem:[ "e1"; "e2" ]
  in
  (* file scans deliver OID order, not name order *)
  expect_violation "unsorted merge-join input"
    (function PL.Missing_sort_order _ -> true | _ -> false)
    (join (scan "e1") (node (Physical.File_scan { coll = "Employees"; binding = "e2" }) []
        ~mem:[ "e2" ]));
  (* with sort enforcers on both inputs the same join lints clean *)
  let sorted b child =
    node (Physical.Sort { Physprop.ord_binding = b; ord_field = Some "name" }) [ child ]
      ~mem:[ b ]
      ~order:{ Physprop.ord_binding = b; ord_field = Some "name" }
  in
  match
    V.plan (cat ())
      (join
         (sorted "e1" (scan "e1"))
         (sorted "e2"
            (node (Physical.File_scan { coll = "Employees"; binding = "e2" }) []
               ~mem:[ "e2" ])))
  with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "sorted merge join: %a" V.pp_violations vs

let test_overclaimed_delivery () =
  (* a node may not promise in-memory bindings it cannot have
     materialized (the delivered-properties side of presence checking) *)
  let p =
    node
      (Physical.Filter [ Pred.atom Pred.Eq (Pred.Field ("e", "name")) fred ])
      [ scan "e" ]
      ~mem:[ "e"; "e.dept" ]
  in
  expect_violation "over-claimed delivered memory"
    (function PL.Undelivered_memory { binding = "e.dept"; _ } -> true | _ -> false)
    p

let test_unknown_names () =
  expect_violation "unknown collection"
    (function PL.Unknown_collection "Nonesuch" -> true | _ -> false)
    (scan ~coll:"Nonesuch" ~mem:false "x");
  expect_violation "unknown index"
    (function PL.Unknown_index { index = "no_such_index"; _ } -> true | _ -> false)
    (node
       (Physical.Index_scan
          { coll = "Cities";
            binding = "c";
            index = "no_such_index";
            key = Value.Str "Joe";
            residual = [];
            derefs = [] })
       [] ~mem:[ "c" ])

let test_required_not_satisfied () =
  match V.plan ~required:(Physprop.in_memory [ "e"; "e.dept" ]) (cat ()) (scan "e") with
  | Ok () -> Alcotest.fail "goal check unexpectedly clean"
  | Error vs ->
    Alcotest.(check bool) "Unsatisfied_required reported" true
      (List.exists (function PL.Unsatisfied_required _ -> true | _ -> false) vs)

let test_plan_costs_reject_shrinking () =
  let child = { (scan "e") with Engine.cost = Cost.io 100.0 } in
  let p =
    node
      (Physical.Filter [ Pred.atom Pred.Eq (Pred.Field ("e", "name")) fred ])
      [ child ] ~mem:[ "e" ]
  in
  (* the parent carries total cost zero, below its child's 100 *)
  match V.plan_costs p with
  | Ok () -> Alcotest.fail "cost check unexpectedly clean"
  | Error [ v ] ->
    Alcotest.(check bool) "reason names the shortfall" true
      (String.length v.V.cv_reason > 0)
  | Error vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* Memo consistency: an unsound mock transformation rule is flagged     *)

let spec_with extra cat =
  let cfg = Config.default in
  { Engine.derive_lprop = Estimator.derive cfg cat;
    transformations = Open_oodb.Trules.all cfg cat @ extra;
    implementations = Open_oodb.Irules.all cfg cat;
    enforcers = Open_oodb.Enforcers.all cfg cat }

let test_memo_flags_unsound_rule () =
  let cat = cat () in
  (* "a selection is equivalent to its input": merges groups with
     different cardinalities, which the memo checker must flag without
     ever executing a plan. The query needs an operator above the
     Select (q1's Project): the merge itself discards the loser group's
     properties, so the inconsistency shows where a surviving parent
     re-derives from the merged input group. *)
  let bogus =
    { Engine.t_name = "bogus-drop-select";
      t_apply =
        (fun _ctx m ->
          match m.Engine.mop with
          | Logical.Select _ -> [ Engine.Ref (List.hd m.Engine.minputs) ]
          | _ -> []) }
  in
  let broken =
    Engine.run (spec_with [ bogus ] cat) (Model.expr_of_logical Q.q1)
      ~required:Physprop.empty
  in
  (match V.memo ~config:Config.default cat broken.Engine.ctx with
  | Ok () -> Alcotest.fail "memo checker missed the unsound rule"
  | Error vs ->
    Alcotest.(check bool) "cardinality mismatch reported" true
      (List.exists
         (fun (v : V.memo_violation) ->
           match v.V.mv_detail with V.Card_mismatch _ -> true | _ -> false)
         vs));
  (* the shipped rule set passes on the same query *)
  let sound =
    Engine.run (spec_with [] cat) (Model.expr_of_logical Q.q1) ~required:Physprop.empty
  in
  match V.memo ~config:Config.default cat sound.Engine.ctx with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "sound rule set flagged: %a" V.pp_memo_violation (List.hd vs)

(* ------------------------------------------------------------------ *)
(* Rule-set analysis                                                    *)

let test_divergent_rule_detected () =
  let cat = cat () in
  (* each application grows the conjunction by one atom, so the rule
     keeps producing fresh multi-expressions forever; the fuel bound
     must interrupt the closure and report it *)
  let grow =
    { Engine.t_name = "bogus-grow";
      t_apply =
        (fun _ctx m ->
          match m.Engine.mop with
          | Logical.Select (a :: _ as p) ->
            [ Engine.Node (Logical.Select (p @ [ a ]), [ Engine.Ref (List.hd m.Engine.minputs) ]) ]
          | _ -> []) }
  in
  let r =
    Engine.run ~closure_fuel:500 (spec_with [ grow ] cat) (Model.expr_of_logical Q.q1)
      ~required:Physprop.empty
  in
  Alcotest.(check bool) "stats report incomplete closure" false
    r.Engine.stats.Engine.closure_complete;
  Alcotest.(check bool) "memo snapshot agrees" false (Engine.closure_complete r.Engine.ctx)

let test_rules_report () =
  let cat = cat () in
  let r = V.rules cat Q.all in
  Alcotest.(check bool) "workload closure terminates" true (V.rules_ok r);
  Alcotest.(check int) "one row per configured rule" (List.length Options.rule_names)
    (List.length r.V.per_rule);
  let fired name =
    List.exists (fun s -> s.V.rs_name = name && s.V.rs_fired > 0) r.V.per_rule
  in
  Alcotest.(check bool) "core rules fire on the paper workload" true
    (List.for_all fired [ "mat-to-join"; "mat-assembly"; "file-scan"; "merge-join" ]);
  (* the set-operation rules legitimately never fire on this workload;
     warm-assembly is disabled by default so it is not reported as dead *)
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " reported dead") true (List.mem rule r.V.never_fired))
    [ "hash-setop"; "setop-assoc"; "setop-commute" ];
  Alcotest.(check bool) "disabled rules not reported dead" false
    (List.mem "warm-assembly" r.V.never_fired);
  (* a tiny fuel budget turns every query into a reported divergence *)
  let starved = V.rules ~fuel:10 cat [ ("fig2", Q.fig2) ] in
  Alcotest.(check bool) "starved closure flagged" false (V.rules_ok starved);
  Alcotest.(check int) "one divergent query" 1 (List.length starved.V.incomplete)

let () =
  Alcotest.run "verify"
    [ ( "positive",
        [ Alcotest.test_case "optimizer plans lint clean" `Quick test_optimizer_plans_lint;
          Alcotest.test_case "baseline plans lint clean" `Quick test_baseline_plans_lint ] );
      ( "plan linter",
        [ Alcotest.test_case "out-of-scope operand" `Quick test_out_of_scope;
          Alcotest.test_case "non-materialized binding" `Quick test_not_in_memory;
          Alcotest.test_case "trim loses memory" `Quick test_trim_loses_memory;
          Alcotest.test_case "merge join needs order" `Quick test_merge_join_needs_order;
          Alcotest.test_case "over-claimed delivery" `Quick test_overclaimed_delivery;
          Alcotest.test_case "unknown names" `Quick test_unknown_names;
          Alcotest.test_case "required not satisfied" `Quick test_required_not_satisfied ] );
      ( "cost sanity",
        [ Alcotest.test_case "cost below inputs rejected" `Quick
            test_plan_costs_reject_shrinking ] );
      ( "memo",
        [ Alcotest.test_case "unsound rule flagged" `Quick test_memo_flags_unsound_rule ] );
      ( "rules",
        [ Alcotest.test_case "divergent rule detected" `Quick test_divergent_rule_detected;
          Alcotest.test_case "coverage report" `Quick test_rules_report ] ) ]
