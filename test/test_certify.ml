(* Typed algebra IR and rule-soundness certifier.

   Unit tests for type inference (schema, scoping, duplicate
   semantics), the memo-wide one-type-per-group invariant (an
   ill-scoped rule firing must raise the moment it happens), and the
   certifier itself: the shipped rule set must certify end to end,
   while a deliberately unsound rule — a join reorder that drops a
   conjunct, the classic refactoring mistake the certifier exists to
   catch — must be refuted with a concrete counterexample database. *)

module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Typing = Oodb_algebra.Typing
module Estimator = Oodb_cost.Estimator
module Model = Open_oodb.Model
module Engine = Open_oodb.Model.Engine
module Options = Open_oodb.Options
module Trules = Open_oodb.Trules
module Db = Oodb_exec.Db
module Datagen = Oodb_workloads.Datagen
module Queries = Oodb_workloads.Queries
module Verify = Oodb_verify.Verify
module Certify = Oodb_verify.Certify

let cat = lazy (Db.catalog (Datagen.micro ()))

(* ------------------------------------------------------------------ *)
(* Type inference                                                      *)

let infer_exn q =
  match Typing.infer (Lazy.force cat) q with
  | Ok t -> t
  | Error m -> Alcotest.failf "expected the query to typecheck: %s" m

let test_infer_basics () =
  let get = Logical.get ~coll:"Employees" ~binding:"e" in
  let t = infer_exn get in
  Alcotest.(check (list (pair string string)))
    "a scan binds its collection's class"
    [ ("e", "Employee") ] t.Typing.ty_bindings;
  Alcotest.(check bool) "a scan is a set" true (t.Typing.ty_dup = Typing.Set_sem);
  Alcotest.(check bool) "a scan has no projection columns" true
    (t.Typing.ty_cols = None);
  let sel =
    Logical.select [ Pred.atom Pred.Lt (Pred.Field ("e", "age")) (Pred.Const (Value.Int 40)) ] get
  in
  Alcotest.(check bool) "selection preserves the type" true
    (Typing.equal t (infer_exn sel));
  let mat = Logical.mat ~src:"e" ~field:"dept" sel in
  let tm = infer_exn mat in
  Alcotest.(check (list (pair string string)))
    "Mat brings the reference target into scope"
    [ ("e", "Employee"); ("e.dept", "Department") ]
    (List.sort compare tm.Typing.ty_bindings);
  let proj =
    Logical.project [ { Logical.p_expr = Pred.Field ("e", "name"); p_name = "n" } ] sel
  in
  let tp = infer_exn proj in
  (match tp.Typing.ty_cols with
  | Some [ ("n", Typing.Typed _) ] -> ()
  | _ -> Alcotest.failf "projection columns not inferred: %s" (Typing.to_string tp))

let test_infer_rejects () =
  let reject msg q =
    match Typing.infer (Lazy.force cat) q with
    | Error _ -> ()
    | Ok t -> Alcotest.failf "%s: expected a type error, got %s" msg (Typing.to_string t)
  in
  reject "unknown collection" (Logical.get ~coll:"Nonesuch" ~binding:"x");
  reject "duplicate binder"
    (Logical.cross
       (Logical.get ~coll:"Employees" ~binding:"e")
       (Logical.get ~coll:"Departments" ~binding:"e"));
  reject "selection over a binding that is not in scope"
    (Logical.select
       [ Pred.atom Pred.Eq (Pred.Field ("ghost", "name")) (Pred.Const (Value.Str "Joe")) ]
       (Logical.get ~coll:"Employees" ~binding:"e"));
  reject "Mat over an unknown reference field"
    (Logical.mat ~src:"e" ~field:"nonesuch" (Logical.get ~coll:"Employees" ~binding:"e"))

(* ------------------------------------------------------------------ *)
(* Memo-wide invariant: one type per group, checked at every firing    *)

let session_with rules =
  let cat = Lazy.force cat in
  let cfg = Options.default.Options.config in
  Engine.session
    ~typing:(Typing.infer_op cat)
    { Engine.derive_lprop = Estimator.derive cfg cat;
      transformations = rules;
      implementations = [];
      enforcers = [] }

(* A rule that silently alpha-renames the binder of a scan: each side
   typechecks on its own, but the rewrite lands an expression of a
   different type in an existing group — exactly the class of bug the
   memo-wide check exists to stop at the firing, not at plan time. *)
let renaming_rule =
  { Engine.t_name = "bad-rename-binder";
    t_apply =
      (fun _ctx m ->
        match m.Engine.mop with
        | Logical.Get { coll; binding } ->
          [ Engine.Node (Logical.Get { coll; binding = binding ^ "_oops" }, []) ]
        | _ -> []) }

let test_memo_rejects_ill_typed_firing () =
  let cat' = Lazy.force cat in
  let cfg = Options.default.Options.config in
  (* sound rules close without a violation, and the whole memo passes
     the offline sweep *)
  let s = session_with (Trules.all cfg cat') in
  List.iter (fun (_, q) -> ignore (Engine.register s (Model.expr_of_logical q))) Queries.all;
  (match Verify.types cat' (Engine.session_ctx s) with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "%d type violations in a sound memo" (List.length vs));
  (* the renaming rule is caught the moment it fires *)
  let s = session_with [ renaming_rule ] in
  match Engine.register s (Model.expr_of_logical (snd (List.hd Queries.all))) with
  | exception Engine.Type_violation _ -> ()
  | _ -> Alcotest.fail "ill-typed firing was interned without a violation"

(* ------------------------------------------------------------------ *)
(* Certifier                                                           *)

let find_rule report name =
  match List.find_opt (fun r -> r.Certify.rr_rule = name) report.Certify.cert_rules with
  | Some r -> r
  | None -> Alcotest.failf "rule %s missing from the report" name

let test_default_rules_certify () =
  let report = Certify.run () in
  Alcotest.(check bool) "every default rule certifies" true (Certify.ok report);
  Alcotest.(check (list string)) "no dead rules" [] report.Certify.cert_meta.Certify.m_dead;
  List.iter
    (fun r ->
      if Certify.uncertified r.Certify.rr_status then
        Alcotest.failf "%s: %s" r.Certify.rr_rule (Certify.status_name r.Certify.rr_status);
      Alcotest.(check bool)
        (r.Certify.rr_rule ^ ": at least one check ran")
        true
        (r.Certify.rr_checks > 0))
    report.Certify.cert_rules;
  (* every kind of rule is covered *)
  List.iter
    (fun (name, kind) ->
      let r = find_rule report name in
      Alcotest.(check string)
        (name ^ ": kind")
        (Certify.kind_name kind)
        (Certify.kind_name r.Certify.rr_kind))
    [ ("join-commute", Certify.Transformation);
      ("setop-assoc", Certify.Transformation);
      ("hash-join", Certify.Implementation);
      ("warm-assembly", Certify.Implementation);
      ("sort-enforcer", Certify.Enforcer) ];
  (* the meta-analysis sees the known ping-pong pairs *)
  let pingpong (a, b) =
    List.exists
      (fun (x, y, n) -> ((x, y) = (a, b) || (x, y) = (b, a)) && n > 0)
      report.Certify.cert_meta.Certify.m_pingpong
  in
  Alcotest.(check bool) "join-commute is its own inverse" true
    (pingpong ("join-commute", "join-commute"));
  Alcotest.(check bool) "mat-to-join / join-to-mat ping-pong" true
    (pingpong ("mat-to-join", "join-to-mat"))

(* The acceptance case from the issue: a join reorder that drops a
   predicate. It preserves binders (so the type is unchanged) — only
   the bounded denotational check can refute it. *)
let dropping_rule _cfg _cat =
  [ { Engine.t_name = "join-drop-conjunct";
      t_apply =
        (fun _ctx m ->
          match m.Engine.mop, m.Engine.minputs with
          | Logical.Join (_ :: _ :: _ as p), [ gl; gr ] ->
            [ Engine.Node (Logical.Join [ List.hd p ], [ Engine.Ref gl; Engine.Ref gr ]) ]
          | _ -> []) } ]

let bad_query =
  Logical.join
    [ Pred.atom Pred.Gt (Pred.Field ("e", "age")) (Pred.Field ("d", "floor"));
      Pred.atom Pred.Eq (Pred.Field ("e", "name")) (Pred.Const (Value.Str "Fred")) ]
    (Logical.get ~coll:"Employees" ~binding:"e")
    (Logical.get ~coll:"Departments" ~binding:"d")

let test_unsound_rule_refuted () =
  let report =
    Certify.run ~extra_trules:dropping_rule ~physical:false
      ~queries:[ ("two-conjunct-join", bad_query) ] ()
  in
  Alcotest.(check bool) "report no longer certifies" false (Certify.ok report);
  let r = find_rule report "join-drop-conjunct" in
  match r.Certify.rr_status with
  | Certify.Refuted cx ->
    (* the counterexample is concrete: a real micro-database and two row
       multisets that disagree *)
    Alcotest.(check bool) "expected and actual rows differ" false
      (Certify.(cx.cx_expected = cx.cx_actual));
    Alcotest.(check bool) "names the database" true (String.length cx.Certify.cx_db > 0);
    Alcotest.(check bool) "shows both sides" true
      (String.length cx.Certify.cx_lhs > 0 && String.length cx.Certify.cx_rhs > 0);
    ignore (Format.asprintf "%a" Certify.pp_counterexample cx)
  | s ->
    Alcotest.failf "join-drop-conjunct: expected Refuted, got %s" (Certify.status_name s)

let () =
  Alcotest.run "certify"
    [ ( "typing",
        [ Alcotest.test_case "inference basics" `Quick test_infer_basics;
          Alcotest.test_case "inference rejects ill-scoped queries" `Quick
            test_infer_rejects ] );
      ( "memo",
        [ Alcotest.test_case "one type per group, enforced at the firing" `Quick
            test_memo_rejects_ill_typed_firing ] );
      ( "certifier",
        [ Alcotest.test_case "the shipped rule set certifies" `Quick
            test_default_rules_certify;
          Alcotest.test_case "a predicate-dropping join reorder is refuted" `Quick
            test_unsound_rule_refuted ] ) ]
