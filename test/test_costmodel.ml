(* Direct unit tests of the per-algorithm cost formulas. *)

module Config = Oodb_cost.Config
module Cost = Oodb_cost.Cost
module Catalog = Oodb_catalog.Catalog
module OC = Oodb_catalog.Open_oodb_catalog
module Costmodel = Open_oodb.Costmodel

let cfg = Config.default

let cat = OC.catalog ()

let co name = Option.get (Catalog.find_collection cat name)

let total = Cost.total

let test_file_scan () =
  (* Employees: 50,000 x 250 B = 3,052 pages sequential + per-tuple CPU *)
  let c = Costmodel.file_scan cfg (co "Employees") in
  Alcotest.(check (float 0.5)) "io" (3052.0 *. cfg.Config.seq_io) c.Cost.io;
  Alcotest.(check (float 1e-6)) "cpu" (50_000.0 *. Config.per_tuple cfg) c.Cost.cpu;
  (* at batch size 1 the amortized rate degrades to exactly the old
     tuple-at-a-time charge *)
  let tup = { cfg with Config.batch_size = 1 } in
  Alcotest.(check (float 1e-12)) "batch 1 = cpu_tuple" cfg.Config.cpu_tuple
    (Config.per_tuple tup)

let test_btree_height () =
  Alcotest.(check int) "small index" 1 (Costmodel.btree_height cfg ~entries:100.0);
  Alcotest.(check int) "cities" 2 (Costmodel.btree_height cfg ~entries:10_000.0);
  Alcotest.(check bool) "monotone" true
    (Costmodel.btree_height cfg ~entries:1e7 >= Costmodel.btree_height cfg ~entries:1e4)

let test_index_scan_matches () =
  let cheap = Costmodel.index_scan cfg ~coll:(co "Cities") ~matches:2.0 ~residual_atoms:0 in
  let pricey = Costmodel.index_scan cfg ~coll:(co "Cities") ~matches:500.0 ~residual_atoms:0 in
  Alcotest.(check bool) "more matches cost more" true (total cheap < total pricey);
  (* Query 2's lookup: 2 descent reads + 2 fetches at 30 ms *)
  Alcotest.(check (float 0.01)) "q2 magnitude" 0.12 (total cheap)

let test_hash_join_spill () =
  let fits =
    Costmodel.hash_join cfg ~build_card:100.0 ~build_bytes:1e5 ~probe_card:1000.0
      ~probe_bytes:1e5 ~out_card:100.0 ~atoms:0
  in
  let spills =
    Costmodel.hash_join cfg ~build_card:100.0 ~build_bytes:1e8 ~probe_card:1000.0
      ~probe_bytes:1e5 ~out_card:100.0 ~atoms:0
  in
  Alcotest.(check (float 1e-9)) "in-memory join has no io" 0.0 fits.Cost.io;
  Alcotest.(check bool) "spill charges io" true (spills.Cost.io > 0.0)

let test_assembly_bounds () =
  (* departments have a known extent of 1,000: fetches are capped *)
  Alcotest.(check (float 1e-6)) "extent bound" 1_000.0
    (Costmodel.deref_fetches cat ~target_cls:"Department" ~stream_card:50_000.0);
  (* Plant has no extent: one fetch per reference *)
  Alcotest.(check (float 1e-6)) "no bound" 50_000.0
    (Costmodel.deref_fetches cat ~target_cls:"Plant" ~stream_card:50_000.0);
  let w1 = Costmodel.assembly cfg cat ~window:1 ~stream_card:1000.0 ~targets:[ "Plant" ] in
  let w64 = Costmodel.assembly cfg cat ~window:64 ~stream_card:1000.0 ~targets:[ "Plant" ] in
  Alcotest.(check bool) "window helps" true (total w64 < total w1)

let test_warm_assembly () =
  let warm = Costmodel.warm_assembly cfg cat ~target_coll:(co "Jobs") ~stream_card:50_000.0 in
  let cold = Costmodel.assembly cfg cat ~window:16 ~stream_card:50_000.0 ~targets:[ "Job" ] in
  (* warm start pays one sequential scan of Jobs instead of 5,000 fetches *)
  Alcotest.(check bool) "warm cheaper for hot targets" true (total warm < total cold)

let test_merge_join_linear () =
  let small = Costmodel.merge_join cfg ~left_card:10.0 ~right_card:10.0 ~out_card:10.0 ~atoms:0 in
  let big =
    Costmodel.merge_join cfg ~left_card:10_000.0 ~right_card:10_000.0 ~out_card:10.0 ~atoms:0
  in
  Alcotest.(check bool) "linear in inputs" true
    (total big > 100.0 *. total small && total big < 10_000.0 *. total small);
  Alcotest.(check (float 1e-9)) "no io" 0.0 big.Cost.io

let test_pointer_join () =
  let c = Costmodel.pointer_join cfg cat ~target_cls:"Department" ~stream_card:50_000.0 ~atoms:1 in
  (* bounded by the department extent, at the random rate *)
  Alcotest.(check (float 1e-6)) "io" (1_000.0 *. cfg.Config.rand_io) c.Cost.io

let test_sort_spills () =
  let fits = Costmodel.sort cfg ~card:100.0 ~row_bytes:100.0 in
  let spills = Costmodel.sort cfg ~card:1e6 ~row_bytes:100.0 in
  Alcotest.(check (float 1e-9)) "in-memory sort" 0.0 fits.Cost.io;
  Alcotest.(check bool) "external sort charges io" true (spills.Cost.io > 0.0);
  Alcotest.(check bool) "n log n" true (spills.Cost.cpu > 1e4 *. fits.Cost.cpu)

let test_all_costs_non_negative () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "non-negative" true (Cost.total c >= 0.0))
    [ Costmodel.file_scan cfg (co "Capitals");
      Costmodel.filter cfg ~card:0.0 ~atoms:0;
      Costmodel.alg_project cfg ~card:0.0;
      Costmodel.alg_unnest cfg ~in_card:0.0 ~out_card:0.0;
      Costmodel.hash_setop cfg ~left_card:0.0 ~right_card:0.0 ~out_card:0.0;
      Costmodel.assembly cfg cat ~window:1 ~stream_card:0.0 ~targets:[] ]

let () =
  Alcotest.run "costmodel"
    [ ( "formulas",
        [ Alcotest.test_case "file scan" `Quick test_file_scan;
          Alcotest.test_case "btree height" `Quick test_btree_height;
          Alcotest.test_case "index scan" `Quick test_index_scan_matches;
          Alcotest.test_case "hash join spill" `Quick test_hash_join_spill;
          Alcotest.test_case "assembly extent bound" `Quick test_assembly_bounds;
          Alcotest.test_case "warm assembly" `Quick test_warm_assembly;
          Alcotest.test_case "merge join" `Quick test_merge_join_linear;
          Alcotest.test_case "pointer join" `Quick test_pointer_join;
          Alcotest.test_case "sort" `Quick test_sort_spills;
          Alcotest.test_case "non-negativity" `Quick test_all_costs_non_negative ] ) ]
