(* Execution-engine tests over a small generated database. *)

module Value = Oodb_storage.Value
module Store = Oodb_storage.Store
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Physprop = Open_oodb.Physprop
module Physical = Open_oodb.Physical
module Engine = Open_oodb.Model.Engine
module Db = Oodb_exec.Db
module Env = Oodb_exec.Env
module Eval = Oodb_exec.Eval
module Iterator = Oodb_exec.Iterator
module Operators = Oodb_exec.Operators
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options

let db () = Lazy.force Helpers.small_db

let cat () = Db.catalog (db ())

(* Manual plan node (costs irrelevant for execution). *)
let node alg children delivered =
  { Engine.alg;
    children;
    cost = Oodb_cost.Cost.zero;
    delivered = Physprop.in_memory delivered }

(* ------------------------------------------------------------------ *)
(* Env / Eval                                                           *)

let test_env_basics () =
  let d = db () in
  let store = Db.store d in
  let oid = List.hd (Store.oids store ~coll:"Cities") in
  let env = Env.bind_obj Env.empty "c" (Store.peek store oid) in
  Alcotest.(check int) "oid" oid (Env.oid env "c");
  Alcotest.(check bool) "obj" true ((Env.obj env "c").Store.oid = oid);
  let env = Env.bind_ref env "x" 99 in
  Alcotest.(check int) "ref oid" 99 (Env.oid env "x");
  Alcotest.check_raises "not materialized" (Env.Not_materialized "x") (fun () ->
      ignore (Env.obj env "x"));
  Alcotest.check_raises "unbound" (Env.Unbound "nope") (fun () -> ignore (Env.oid env "nope"));
  Alcotest.(check (list string)) "bindings" [ "c"; "x" ] (Env.bindings env);
  Alcotest.(check (list string)) "narrow" [ "x" ] (Env.bindings (Env.narrow env [ "x" ]))

let test_eval () =
  let d = db () in
  let store = Db.store d in
  let oid = List.hd (Store.oids store ~coll:"Cities") in
  let env = Env.bind_obj Env.empty "c" (Store.peek store oid) in
  let name = Store.field (Store.peek store oid) "name" in
  Alcotest.(check bool) "eq" true
    (Eval.atom env (Pred.atom Pred.Eq (Pred.Field ("c", "name")) (Pred.Const name)));
  Alcotest.(check bool) "self" true
    (Eval.atom env (Pred.atom Pred.Eq (Pred.Self "c") (Pred.Const (Value.Ref oid))));
  Alcotest.(check bool) "missing field is null" true
    (Eval.operand env (Pred.Field ("c", "no_such_field")) = Value.Null);
  Alcotest.(check bool) "null comparisons false" false
    (Eval.atom env (Pred.atom Pred.Lt (Pred.Field ("c", "no_such_field")) (Pred.Const (Value.Int 1))))

(* ------------------------------------------------------------------ *)
(* Operators                                                            *)

let test_file_scan_counts () =
  let d = db () in
  let it = Operators.file_scan d ~coll:"Cities" ~binding:"c" ~batch_size:8 in
  let envs = Iterator.to_list it in
  Alcotest.(check int) "all cities" (Store.cardinality (Db.store d) ~coll:"Cities")
    (List.length envs)

let test_index_scan_equals_filter () =
  let d = db () in
  let store = Db.store d in
  (* pick the time of the first task so the result is non-empty *)
  let t0 = List.hd (Store.oids store ~coll:"Tasks") in
  let key = Store.field (Store.peek store t0) "time" in
  let via_index =
    Iterator.to_list
      (Operators.index_scan d ~coll:"Tasks" ~binding:"t" ~index:"tasks_time" ~key ~residual:[] ~derefs:[] ~batch_size:8)
    |> List.map (fun e -> Env.oid e "t")
    |> List.sort compare
  in
  let via_scan =
    Iterator.to_list
      (Operators.filter
         [ Pred.atom Pred.Eq (Pred.Field ("t", "time")) (Pred.Const key) ]
         (Operators.file_scan d ~coll:"Tasks" ~binding:"t" ~batch_size:8))
    |> List.map (fun e -> Env.oid e "t")
    |> List.sort compare
  in
  Alcotest.(check bool) "non-empty" true (via_scan <> []);
  Alcotest.(check (list int)) "same objects" via_scan via_index

let test_assembly_materializes () =
  let d = db () in
  let it =
    Operators.assembly d
      ~paths:[ { Physical.ap_src = "c"; ap_field = Some "mayor"; ap_out = "m" } ]
      ~window:4
      (Operators.file_scan d ~coll:"Cities" ~binding:"c" ~batch_size:8)
  in
  let envs = Iterator.to_list it in
  Alcotest.(check int) "cardinality preserved" (Store.cardinality (Db.store d) ~coll:"Cities")
    (List.length envs);
  List.iter
    (fun env ->
      let c = Env.obj env "c" and m = Env.obj env "m" in
      Alcotest.(check bool) "mayor resolved" true
        (Value.as_ref (Store.field c "mayor") = Some m.Store.oid))
    envs

let test_assembly_window_sizes_agree () =
  let d = db () in
  let run window =
    Operators.assembly d
      ~paths:[ { Physical.ap_src = "c"; ap_field = Some "mayor"; ap_out = "m" } ]
      ~window
      (Operators.file_scan d ~coll:"Cities" ~binding:"c" ~batch_size:8)
    |> Iterator.to_list
    |> List.map (fun e -> (Env.oid e "c", Env.oid e "m"))
  in
  Alcotest.(check bool) "window 1 == window 64" true (run 1 = run 64)

let test_unnest () =
  let d = db () in
  let store = Db.store d in
  let it =
    Operators.alg_unnest d ~src:"t" ~field:"team_members" ~out:"m" ~batch_size:8
      (Operators.file_scan d ~coll:"Tasks" ~binding:"t" ~batch_size:8)
  in
  let envs = Iterator.to_list it in
  let expected =
    List.fold_left
      (fun acc t ->
        acc + List.length (Value.set_elements (Store.field (Store.peek store t) "team_members")))
      0 (Store.oids store ~coll:"Tasks")
  in
  Alcotest.(check int) "one pair per member" expected (List.length envs);
  (* unnest output is a reference, not materialized *)
  match envs with
  | env :: _ ->
    Alcotest.check_raises "not in memory" (Env.Not_materialized "m") (fun () ->
        ignore (Env.obj env "m"))
  | [] -> Alcotest.fail "no members"

let test_hash_join_equals_pointer_join () =
  let d = db () in
  let link = Pred.atom Pred.Eq (Pred.Field ("e", "dept")) (Pred.Self "d") in
  let hash =
    Operators.hash_join d Oodb_cost.Config.default [ link ]
      ~build:(Operators.file_scan d ~coll:"Departments" ~binding:"d" ~batch_size:8)
      ~probe:(Operators.file_scan d ~coll:"Employees" ~binding:"e" ~batch_size:8)
    |> Iterator.to_list
    |> List.map (fun env -> (Env.oid env "e", Env.oid env "d"))
    |> List.sort compare
  in
  let pointer =
    Operators.pointer_join d ~src:"e" ~field:(Some "dept") ~out:"d" ~residual:[]
      (Operators.file_scan d ~coll:"Employees" ~binding:"e" ~batch_size:8)
    |> Iterator.to_list
    |> List.map (fun env -> (Env.oid env "e", Env.oid env "d"))
    |> List.sort compare
  in
  Alcotest.(check bool) "non-empty" true (hash <> []);
  Alcotest.(check bool) "same pairs" true (hash = pointer)

let test_hash_join_residual () =
  let d = db () in
  let link = Pred.atom Pred.Eq (Pred.Field ("e", "dept")) (Pred.Self "d") in
  let residual = Pred.atom Pred.Ge (Pred.Field ("e", "age")) (Pred.Const (Value.Int 40)) in
  let rows =
    Operators.hash_join d Oodb_cost.Config.default [ link; residual ]
      ~build:(Operators.file_scan d ~coll:"Departments" ~binding:"d" ~batch_size:8)
      ~probe:(Operators.file_scan d ~coll:"Employees" ~binding:"e" ~batch_size:8)
    |> Iterator.to_list
  in
  List.iter
    (fun env ->
      match Store.field (Env.obj env "e") "age" with
      | Value.Int a -> Alcotest.(check bool) "residual applied" true (a >= 40)
      | _ -> Alcotest.fail "age missing")
    rows

let test_setops () =
  let d = db () in
  let scan () = Operators.file_scan d ~coll:"Countries" ~binding:"n" ~batch_size:8 in
  let filter lo it =
    Operators.filter [ Pred.atom Pred.Ge (Pred.Self "n") (Pred.Const (Value.Ref lo)) ] it
  in
  let store = Db.store d in
  let oids = Store.oids store ~coll:"Countries" in
  let mid = List.nth oids (List.length oids / 2) in
  let n_all = List.length oids in
  let high () = filter mid (scan ()) in
  let union = Iterator.to_list (Operators.hash_union ~batch_size:8 (scan ()) (high ())) in
  Alcotest.(check int) "union dedups" n_all (List.length union);
  let inter = Iterator.to_list (Operators.hash_intersect ~batch_size:8 (scan ()) (high ())) in
  let n_high = List.length (Iterator.to_list (high ())) in
  Alcotest.(check int) "intersection" n_high (List.length inter);
  let diff = Iterator.to_list (Operators.hash_difference ~batch_size:8 (scan ()) (high ())) in
  Alcotest.(check int) "difference" (n_all - n_high) (List.length diff)

let test_sort () =
  let d = db () in
  let it =
    Operators.sort
      { Physprop.ord_binding = "n"; ord_field = Some "name" }
      ~batch_size:8
      (Operators.file_scan d ~coll:"Countries" ~binding:"n" ~batch_size:8)
  in
  let names =
    Iterator.to_list it |> List.map (fun env -> Store.field (Env.obj env "n") "name")
  in
  let sorted = List.sort Value.compare names in
  Alcotest.(check bool) "sorted output" true (names = sorted)

let test_trim_enforces_properties () =
  let d = db () in
  (* a scan trimmed to nothing must raise on field access *)
  let it = Operators.trim [] (Operators.file_scan d ~coll:"Cities" ~binding:"c" ~batch_size:8) in
  Iterator.open_ it;
  (match Iterator.next it with
  | Some env ->
    Alcotest.check_raises "demoted to reference" (Env.Not_materialized "c") (fun () ->
        ignore (Env.obj env "c"))
  | None -> Alcotest.fail "no tuples");
  Iterator.close it

(* A failing operator must not leak its children: [Iterator.to_list]
   (the executor's drain) closes the whole tree before re-raising. The
   spy records whether the scan underneath the exploding filter got its
   [close]. *)
let test_failing_predicate_closes_tree () =
  let d = db () in
  let closed = ref false in
  let inner = Operators.file_scan d ~coll:"Cities" ~binding:"c" ~batch_size:4 in
  let spy =
    Iterator.make_batched
      ~open_:(fun () ->
        closed := false;
        Iterator.open_ inner)
      ~next_batch:(fun () -> Iterator.next_batch inner)
      ~close:(fun () ->
        closed := true;
        Iterator.close inner)
  in
  (* the predicate references an unbound binding, so evaluation raises *)
  let boom =
    [ Pred.atom Pred.Eq (Pred.Field ("zzz", "f")) (Pred.Const (Value.Int 1)) ]
  in
  let it = Operators.filter boom spy in
  Alcotest.check_raises "predicate raises" (Env.Unbound "zzz") (fun () ->
      ignore (Iterator.to_list it));
  Alcotest.(check bool) "scan closed despite exception" true !closed

(* ------------------------------------------------------------------ *)
(* Executor on optimizer output                                         *)

let test_run_measured_resets () =
  let d = db () in
  let q = Oodb_workloads.Queries.q2 in
  let plan = Opt.plan_exn (Opt.optimize (cat ()) q) in
  let _, r1 = Executor.run_measured d plan in
  let _, r2 = Executor.run_measured d plan in
  Alcotest.(check int) "deterministic io" (r1.Executor.seq_reads + r1.Executor.rand_reads)
    (r2.Executor.seq_reads + r2.Executor.rand_reads)

let test_all_queries_execute () =
  let d = db () in
  let c = cat () in
  ignore c;
  List.iter
    (fun (name, q) ->
      let plan = Opt.plan_exn (Opt.optimize (Db.catalog d) q) in
      let rows = Executor.run d plan in
      Alcotest.(check bool) (name ^ " executes") true (List.length rows >= 0))
    Oodb_workloads.Queries.all

let test_malformed_plan_rejected () =
  let d = db () in
  let bad = node (Physical.Filter []) [] [] in
  Alcotest.(check bool) "arity checked" true
    (try
       ignore (Executor.run d bad);
       false
     with Invalid_argument _ -> true)

let test_missing_index_rejected () =
  let d = db () in
  let bad =
    node
      (Physical.Index_scan
         { coll = "Cities";
           binding = "c";
           index = "no_such_index";
           key = Value.Int 1;
           residual = [];
           derefs = [] })
      [] [ "c" ]
  in
  Alcotest.(check bool) "missing physical index" true
    (try
       ignore (Executor.run d bad);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Analyze (statistics refresh)                                         *)

let test_analyze () =
  (* a fresh db so catalog mutations don't leak into shared fixtures *)
  let d = Oodb_workloads.Datagen.generate ~scale:0.02 ~buffer_pages:64 () in
  let cat = Db.catalog d in
  let distinct_names = Oodb_exec.Analyze.distinct_values d ~coll:"Persons" ~field:"name" in
  Alcotest.(check bool) "plausible distinct count" true (distinct_names > 1);
  let avg = Oodb_exec.Analyze.average_set_size d ~coll:"Tasks" ~field:"team_members" in
  Alcotest.(check bool) "teams non-empty" true (avg > 1.0);
  let report = Oodb_exec.Analyze.refresh d in
  Alcotest.(check bool) "updated something" true
    (report.Oodb_exec.Analyze.attributes_updated > 0
    && report.Oodb_exec.Analyze.set_attributes_updated > 0
    && report.Oodb_exec.Analyze.indexes_updated = 3);
  Alcotest.(check (option int)) "measured stat stored" (Some distinct_names)
    (Oodb_catalog.Catalog.distinct cat ~cls:"Person" ~field:"name");
  (* the deliberately unstatisticized attribute stays that way *)
  Alcotest.(check (option int)) "Task.time untouched" None
    (Oodb_catalog.Catalog.distinct cat ~cls:"Task" ~field:"time");
  (* the optimizer still works against refreshed statistics *)
  let o = Opt.optimize cat Oodb_workloads.Queries.q2 in
  Alcotest.(check bool) "plan found" true (o.Opt.plan <> None)


let () =
  Alcotest.run "exec"
    [ ( "env",
        [ Alcotest.test_case "bindings and slots" `Quick test_env_basics;
          Alcotest.test_case "predicate evaluation" `Quick test_eval ] );
      ( "operators",
        [ Alcotest.test_case "file scan" `Quick test_file_scan_counts;
          Alcotest.test_case "index scan == filter" `Quick test_index_scan_equals_filter;
          Alcotest.test_case "assembly materializes" `Quick test_assembly_materializes;
          Alcotest.test_case "assembly window invariance" `Quick test_assembly_window_sizes_agree;
          Alcotest.test_case "unnest reveals references" `Quick test_unnest;
          Alcotest.test_case "hash join == pointer join" `Quick test_hash_join_equals_pointer_join;
          Alcotest.test_case "hash join residual" `Quick test_hash_join_residual;
          Alcotest.test_case "set operations" `Quick test_setops;
          Alcotest.test_case "sort" `Quick test_sort;
          Alcotest.test_case "trim enforces properties" `Quick test_trim_enforces_properties;
          Alcotest.test_case "exception closes iterator tree" `Quick
            test_failing_predicate_closes_tree ] );
      ( "executor",
        [ Alcotest.test_case "measured runs reset stats" `Quick test_run_measured_resets;
          Alcotest.test_case "all paper queries execute" `Quick test_all_queries_execute;
          Alcotest.test_case "malformed plans rejected" `Quick test_malformed_plan_rejected;
          Alcotest.test_case "missing index rejected" `Quick test_missing_index_rejected ] );
      ("analyze", [ Alcotest.test_case "statistics refresh" `Quick test_analyze ]) ]

