(* The scenario factory: generator determinism, differential fuzzing,
   effectiveness scoring, and the shrinking machinery. *)

module Scenario = Oodb_scenario.Scenario
module Schemagen = Oodb_scenario.Schemagen
module Querygen = Oodb_scenario.Querygen
module Differential = Oodb_scenario.Differential
module Effectiveness = Oodb_scenario.Effectiveness
module Catalog = Oodb_catalog.Catalog
module Db = Oodb_exec.Db
module Options = Open_oodb.Options
module Ast = Zql.Ast

let seed = 42

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_same_seed_same_digest () =
  let a = Scenario.generate ~seed ~index:3 () in
  let b = Scenario.generate ~seed ~index:3 () in
  Alcotest.(check string) "digests equal" (Scenario.digest a) (Scenario.digest b);
  Alcotest.(check (list string))
    "zql texts equal"
    (List.map (fun q -> q.Scenario.qc_zql) a.Scenario.sc_queries)
    (List.map (fun q -> q.Scenario.qc_zql) b.Scenario.sc_queries)

let test_different_seed_different_digest () =
  let a = Scenario.generate ~seed ~index:0 () in
  let b = Scenario.generate ~seed:(seed + 1) ~index:0 () in
  if Scenario.digest a = Scenario.digest b then
    Alcotest.fail "different seeds produced identical scenarios"

(* Scenario [i] must not depend on how many scenarios are generated
   around it: streams are derived per (seed, index). *)
let test_prefix_stability () =
  let ten = List.init 10 (fun index -> Scenario.generate ~seed ~index ()) in
  let three = List.init 3 (fun index -> Scenario.generate ~seed ~index ()) in
  List.iteri
    (fun i sc ->
      Alcotest.(check string)
        (Printf.sprintf "scenario %d digest" i)
        (Scenario.digest (List.nth ten i))
        (Scenario.digest sc))
    three

let test_build_db_deterministic () =
  let sc = Scenario.generate ~seed ~index:1 () in
  let d1 = Catalog.digest (Db.catalog (Scenario.build_db sc)) in
  let d2 = Catalog.digest (Db.catalog (Scenario.build_db sc)) in
  Alcotest.(check string) "catalog digests equal" (Digest.to_hex d1) (Digest.to_hex d2)

(* ------------------------------------------------------------------ *)
(* Generated artifacts are well-formed *)

let test_queries_compile_and_roundtrip () =
  for index = 0 to 7 do
    let sc = Scenario.generate ~seed ~index () in
    let cat = Scenario.base_catalog sc.Scenario.sc_schema in
    List.iter
      (fun (qc : Scenario.query_case) ->
        (* the text parses back to an AST that simplifies to the same
           logical expression as the generator's (parsed trees carry
           source locations, so AST equality is the wrong judgment) *)
        match Zql.Parser.parse qc.Scenario.qc_zql with
        | Error e ->
          Alcotest.failf "scenario %d %s: does not parse: %s\n%s" index qc.Scenario.qc_name e
            qc.Scenario.qc_zql
        | Ok ast -> (
          match
            Zql.Simplify.query cat ast, Zql.Simplify.query cat qc.Scenario.qc_ast
          with
          | Ok parsed, Ok generated ->
            if parsed <> generated then
              Alcotest.failf "scenario %d %s: parse (to_zql q) simplifies differently\n%s"
                index qc.Scenario.qc_name qc.Scenario.qc_zql
          | Error e, _ | _, Error e ->
            Alcotest.failf "scenario %d %s: does not simplify: %s\n%s" index
              qc.Scenario.qc_name e qc.Scenario.qc_zql))
      sc.Scenario.sc_queries
  done

let test_query_mix () =
  let sc = Scenario.generate ~seed ~index:0 () in
  let names = List.map (fun q -> q.Scenario.qc_name) sc.Scenario.sc_queries in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing %s query" expected)
    [ "lookup"; "rich"; "setop"; "rand0" ];
  (* the rich query really is a multi-way join *)
  let rich =
    List.find (fun q -> q.Scenario.qc_name = "rich") sc.Scenario.sc_queries
  in
  if List.length rich.Scenario.qc_ast.Ast.q_from < 2 then
    Alcotest.fail "rich query has fewer than 2 ranges"

(* ------------------------------------------------------------------ *)
(* Differential harness *)

let test_differential_passes () =
  for index = 0 to 2 do
    let sc = Scenario.generate ~seed ~index () in
    let r = Differential.run sc in
    (match r.Differential.d_failures with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "scenario %d: %s under %s: %s\nzql: %s\nshrunk: %s" index
        f.Differential.f_query f.Differential.f_variant f.Differential.f_detail
        f.Differential.f_zql f.Differential.f_shrunk_zql);
    Alcotest.(check bool) "ran checks" true (r.Differential.d_checks > 0)
  done

(* The shrinker minimizes against an injected failure predicate: a
   "variant" that disagrees whenever a WHERE clause with at least one
   conjunct and a set operation are both present must shrink away
   everything else. *)
let test_shrink_machinery () =
  let sc = Scenario.generate ~seed ~index:0 () in
  let setop =
    List.find (fun q -> q.Scenario.qc_name = "setop") sc.Scenario.sc_queries
  in
  let q = setop.Scenario.qc_ast in
  (* inflate the query with droppable structure *)
  let inflated = { q with Ast.q_setops = q.Ast.q_setops @ q.Ast.q_setops } in
  let fails (q' : Ast.query) = q'.Ast.q_setops <> [] in
  let rec go q =
    match List.find_opt fails (Differential.shrink_candidates q) with
    | Some q' -> go q'
    | None -> q
  in
  let shrunk = go inflated in
  Alcotest.(check int) "one setop branch left" 1 (List.length shrunk.Ast.q_setops);
  Alcotest.(check bool) "where dropped" true (shrunk.Ast.q_where = None)

(* ------------------------------------------------------------------ *)
(* Effectiveness *)

let test_effectiveness_rich_alternatives () =
  let sc = Scenario.generate ~seed ~index:0 () in
  let db = Scenario.build_db sc in
  let rich = List.find (fun q -> q.Scenario.qc_name = "rich") sc.Scenario.sc_queries in
  match
    Effectiveness.score_zql db Options.default ~name:"rich" ~zql:rich.Scenario.qc_zql
  with
  | Error e -> Alcotest.failf "rich query scoring failed: %s" e
  | Ok s ->
    Alcotest.(check bool)
      (Printf.sprintf "at least 8 alternatives (got %d)" s.Effectiveness.s_alternatives)
      true
      (s.Effectiveness.s_alternatives >= 8);
    Alcotest.(check int) "all alternatives agree on rows" 0 s.Effectiveness.s_row_mismatches;
    Alcotest.(check bool) "regret >= 1" true (s.Effectiveness.s_regret >= 1.0)

let test_effectiveness_control_regret () =
  let sc = Scenario.generate ~seed ~index:0 () in
  match Effectiveness.negative_control sc with
  | Error e -> Alcotest.failf "control scoring failed: %s" e
  | Ok s ->
    Alcotest.(check bool)
      (Printf.sprintf "corrupted stats show regret > 1 (got %g)" s.Effectiveness.s_regret)
      true
      (s.Effectiveness.s_regret > 1.0);
    Alcotest.(check bool) "rank worse than 1" true (s.Effectiveness.s_rank > 1)

let test_effectiveness_report () =
  let sc = Scenario.generate ~seed ~index:1 () in
  let r = Effectiveness.run sc in
  Alcotest.(check bool) "scored every query" true
    (List.length r.Effectiveness.e_scores = List.length sc.Scenario.sc_queries);
  List.iter
    (fun (s : Effectiveness.score) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s regret >= 1" s.Effectiveness.s_query)
        true
        (s.Effectiveness.s_regret >= 1.0);
      Alcotest.(check int)
        (Printf.sprintf "%s row mismatches" s.Effectiveness.s_query)
        0 s.Effectiveness.s_row_mismatches)
    r.Effectiveness.e_scores

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "scenario"
    [ ( "determinism",
        [ Alcotest.test_case "same seed, same digest" `Quick test_same_seed_same_digest;
          Alcotest.test_case "different seed, different digest" `Quick
            test_different_seed_different_digest;
          Alcotest.test_case "prefix stability" `Quick test_prefix_stability;
          Alcotest.test_case "build_db deterministic" `Quick test_build_db_deterministic ] );
      ( "generation",
        [ Alcotest.test_case "queries compile and round-trip" `Quick
            test_queries_compile_and_roundtrip;
          Alcotest.test_case "query mix" `Quick test_query_mix ] );
      ( "differential",
        [ Alcotest.test_case "scenarios pass all variants" `Slow test_differential_passes;
          Alcotest.test_case "shrink machinery" `Quick test_shrink_machinery ] );
      ( "effectiveness",
        [ Alcotest.test_case "rich query samples >= 8 plans" `Quick
            test_effectiveness_rich_alternatives;
          Alcotest.test_case "corrupted stats show regret" `Quick
            test_effectiveness_control_regret;
          Alcotest.test_case "full report" `Slow test_effectiveness_report ] ) ]
