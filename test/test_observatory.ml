(* The performance observatory: hierarchical spans (Chrome trace-event
   export), latency histograms with exact degenerate-case percentiles,
   and the bench-history regression gate.

   The load-bearing invariants:
   - a collected span stream is well-formed (every [`E] closes the most
     recent unmatched [`B] of the same name, nothing left open), for
     every query at every batch granularity;
   - per-operator span durations, paired up by the ["op_id"] argument,
     sum to the profiler's own inclusive wall times (the two share the
     exact same clock readings);
   - the regression gate flags a genuine 2x slowdown and stays quiet on
     both identical records and sub-floor noise. *)

module Json = Oodb_util.Json
module Span = Oodb_obs.Span
module Metrics = Oodb_obs.Metrics
module Trace = Oodb_obs.Trace
module Profile = Oodb_obs.Profile
module History = Oodb_obs.History
module Plancache = Oodb_plancache.Plancache
module Opt = Open_oodb.Optimizer
module Engine = Open_oodb.Model.Engine
module Db = Oodb_exec.Db
module Q = Oodb_workloads.Queries

(* ------------------------------------------------------------------ *)
(* Histogram percentiles                                                *)

let hist_of samples =
  let m = Metrics.create () in
  List.iter (Metrics.observe_hist m "h") samples;
  match Metrics.find (Metrics.snapshot m) "h" with
  | Some (Metrics.Histogram h) -> h
  | _ -> Alcotest.fail "histogram missing from snapshot"

let pct h q =
  match Metrics.percentile h q with
  | Some v -> v
  | None -> Alcotest.fail "percentile of non-empty histogram was None"

let test_hist_exact_percentiles () =
  (* One sample: every percentile is that sample, exactly. *)
  let h = hist_of [ 0.005 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "single sample p%.0f" (q *. 100.))
        0.005 (pct h q))
    [ 0.5; 0.95; 0.99; 1.0 ];
  (* All equal: clamping into [min, max] makes the bucket bound exact. *)
  let h = hist_of (List.init 10 (fun _ -> 0.003)) in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "all-equal p%.0f" (q *. 100.))
        0.003 (pct h q))
    [ 0.5; 0.95; 0.99 ];
  (* A sample beyond the top bucket bound lands in the overflow bucket,
     whose bound is infinity — the clamp to the exact max rescues it. *)
  let h = hist_of [ 1e9 ] in
  Alcotest.(check (float 0.)) "overflow sample p99 is the exact max" 1e9
    (pct h 0.99);
  (* An empty histogram has no percentiles at all. *)
  let empty =
    { Metrics.count = 0;
      sum = 0.;
      min = infinity;
      max = neg_infinity;
      counts = Array.make (Array.length Metrics.bucket_bounds) 0 }
  in
  Alcotest.(check bool) "empty histogram p50 is None" true
    (Metrics.percentile empty 0.5 = None);
  Alcotest.(check bool) "overflow bucket bound is infinite" true
    (Metrics.bucket_bounds.(Array.length Metrics.bucket_bounds - 1) = infinity)

let test_hist_monotone_and_bounded () =
  let samples = [ 1e-5; 3e-5; 2e-4; 0.001; 0.004; 0.004; 0.02; 0.1; 0.5; 2.0 ] in
  let h = hist_of samples in
  let p50 = pct h 0.5 and p95 = pct h 0.95 and p99 = pct h 0.99 in
  Alcotest.(check int) "count" (List.length samples) h.Metrics.count;
  Alcotest.(check (float 0.)) "max exact" 2.0 h.Metrics.max;
  Alcotest.(check (float 0.)) "min exact" 1e-5 h.Metrics.min;
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= h.Metrics.max);
  Alcotest.(check bool) "p50 >= min" true (p50 >= h.Metrics.min)

(* ------------------------------------------------------------------ *)
(* Span well-formedness across the whole pipeline                       *)

(* Run the full pipeline — cache-routed optimization then profiled
   execution — with one collector threaded through both. *)
let traced_pipeline ?registry ~batch_size q =
  let db = Lazy.force Helpers.small_db in
  let spans = Span.create () in
  let cache = Plancache.create () in
  let outcome =
    Span.with_span (Some spans) ~cat:"pipeline" "optimize" (fun () ->
        Plancache.optimize ~spans cache (Db.catalog db) q)
  in
  let plan = match outcome.Plancache.plan with
    | Some p -> p
    | None -> Alcotest.fail "no plan"
  in
  let config = { Oodb_cost.Config.default with Oodb_cost.Config.batch_size } in
  let _, _, prof =
    Span.with_span (Some spans) ~cat:"pipeline" "execute" (fun () ->
        Profile.run ~config ~spans ?registry db plan)
  in
  (spans, prof)

let test_span_well_formed () =
  List.iter
    (fun batch_size ->
      List.iter
        (fun (name, q) ->
          let spans, _ = traced_pipeline ~batch_size q in
          let lbl s = Printf.sprintf "%s (batch %d): %s" name batch_size s in
          (match Span.well_formed spans with
          | Ok () -> ()
          | Error e -> Alcotest.fail (lbl "not well-formed: " ^ e));
          Alcotest.(check int) (lbl "no span left open") 0 (Span.depth spans);
          Alcotest.(check bool) (lbl "spans recorded") true (Span.count spans > 0))
        [ ("q1", Q.q1); ("q2", Q.q2); ("q3", Q.q3); ("q4", Q.q4) ])
    [ 1; 64 ]

let test_span_covers_pipeline_phases () =
  let spans, _ = traced_pipeline ~batch_size:64 Q.q2 in
  let names =
    List.fold_left
      (fun acc (e : Span.event) ->
        if e.Span.ev_ph = `B then (e.Span.ev_name, e.Span.ev_cat) :: acc else acc)
      [] (Span.events spans)
  in
  List.iter
    (fun (name, cat) ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s (cat %s) present" name cat)
        true
        (List.mem (name, cat) names))
    [ ("optimize", "pipeline");
      ("fingerprint", "plancache");
      ("cache-lookup", "plancache");
      ("intern", "volcano");
      ("logical-closure", "volcano");
      ("physical-search", "volcano");
      ("execute", "pipeline") ]

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                            *)

let test_chrome_export_balanced () =
  let spans, _ = traced_pipeline ~batch_size:64 Q.q1 in
  let chrome = Span.to_chrome spans in
  (* The export must survive a serialization round-trip... *)
  let chrome =
    match Json.of_string (Json.to_string ~minify:true chrome) with
    | Ok v -> v
    | Error e -> Alcotest.fail ("chrome JSON does not re-parse: " ^ e)
  in
  (match Json.member "displayTimeUnit" chrome with
  | Some (Json.String "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let events =
    match Option.bind (Json.member "traceEvents" chrome) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check int) "one JSON event per recorded event"
    (Span.count spans) (List.length events);
  (* ...and every [E] must close the most recent unmatched [B] of the
     same name — checked on the exported form, stack-walking by hand. *)
  let stack = ref [] in
  let str m e = match Json.member m e with
    | Some (Json.String s) -> s
    | _ -> Alcotest.fail (m ^ " missing")
  in
  let last_ts = ref neg_infinity in
  List.iter
    (fun e ->
      let ts = match Option.bind (Json.member "ts" e) Json.to_float with
        | Some ts -> ts
        | None -> Alcotest.fail "ts missing"
      in
      Alcotest.(check bool) "timestamps non-decreasing" true (ts >= !last_ts);
      last_ts := ts;
      (match Json.member "pid" e, Json.member "tid" e with
      | Some (Json.Int _), Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "pid/tid missing");
      match str "ph" e with
      | "B" ->
        Alcotest.(check bool) "B has a category" true (str "cat" e <> "");
        stack := str "name" e :: !stack
      | "E" -> (
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "E closes the innermost B" top (str "name" e);
          stack := rest
        | [] -> Alcotest.fail "E with no open B")
      | ph -> Alcotest.fail ("unexpected phase " ^ ph))
    events;
  Alcotest.(check int) "all spans closed" 0 (List.length !stack)

(* ------------------------------------------------------------------ *)
(* Spans agree with the profiler                                        *)

let test_spans_agree_with_profiler () =
  List.iter
    (fun batch_size ->
      let spans, prof = traced_pipeline ~batch_size Q.q3 in
      (* Pair B/E events by stack walk; bucket durations by the op_id
         argument carried on executor B events. *)
      let by_op = Hashtbl.create 16 in
      let stack = ref [] in
      List.iter
        (fun (e : Span.event) ->
          match e.Span.ev_ph with
          | `B -> stack := e :: !stack
          | `E -> (
            match !stack with
            | b :: rest ->
              stack := rest;
              (match Option.bind (List.assoc_opt "op_id" b.Span.ev_args) Json.to_int with
              | Some id ->
                let prev = Option.value ~default:0.0 (Hashtbl.find_opt by_op id) in
                Hashtbl.replace by_op id (prev +. (e.Span.ev_ts -. b.Span.ev_ts))
              | None -> ())
            | [] -> Alcotest.fail "unbalanced span stream"))
        (Span.events spans);
      (* Inclusive wall time per profile node must equal the summed span
         durations for that op_id. Both sides are built from the same
         [Sys.time] readings; only the epoch subtraction can wobble. *)
      let rec walk (n : Profile.node) =
        let spanned = Option.value ~default:0.0 (Hashtbl.find_opt by_op n.Profile.op_id) in
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "batch %d, op %d (%s): span time == profiler wall time"
             batch_size n.Profile.op_id
             (Open_oodb.Physical.to_string n.Profile.alg))
          n.Profile.wall_seconds spanned;
        List.iter walk n.Profile.children
      in
      walk prof)
    [ 1; 64 ]

let test_batch_rows_histogram () =
  let registry = Metrics.create () in
  let _, prof = traced_pipeline ~registry ~batch_size:64 Q.q1 in
  match Metrics.find (Metrics.snapshot registry) "exec/batch_rows" with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check bool) "batches observed" true (h.Metrics.count > 0);
    Alcotest.(check bool) "max batch bounded by batch size" true
      (h.Metrics.max <= 64.0);
    ignore prof
  | _ -> Alcotest.fail "exec/batch_rows histogram missing"

(* ------------------------------------------------------------------ *)
(* Bench history                                                        *)

let sample_query name opt exec =
  { History.q_name = name;
    q_opt_min = opt;
    q_opt_median = opt *. 1.1;
    q_exec_min = exec;
    q_exec_median = exec *. 1.2;
    q_rows = 42;
    q_groups = 17;
    q_rules_fired = 23;
    q_mean_qerror = 1.5 }

let sample_scale width opt =
  { History.s_width = width;
    s_opt_seconds = opt;
    s_exhaustive_seconds = opt *. 3.0;
    s_groups = 1 lsl width;
    s_mexprs = 100 * width;
    s_candidates = 10 * width;
    s_pruned = 5 * width }

let sample_record ?(sha = "abc1234") ?(opt = 0.002) ?(exec = 0.010) () =
  { History.r_git_sha = sha;
    r_date = "2026-08-05T12:00:00Z";
    r_batch_size = 64;
    r_cache_hit_rate = 0.5;
    r_queries = [ sample_query "q1" opt exec; sample_query "q2" opt exec ];
    r_search_scale = [ sample_scale 4 0.01; sample_scale 10 2.0 ];
    r_provenance_overhead_pct = 2.5;
    r_whynot_smoke = [ ("q1-merge-lost", 0.004); ("chain8-guided-hash-pruned", 0.12) ] }

let test_history_roundtrip () =
  let r = sample_record () in
  (match History.of_json (History.to_json r) with
  | Ok r' -> Alcotest.(check bool) "record survives to_json/of_json" true (r = r')
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e));
  (* An unprofiled run's nan mean_qerror encodes as null and reads back
     as nan; a v1 record (field absent entirely) reads as nan too. *)
  let q = { (sample_query "q1" 0.002 0.010) with History.q_mean_qerror = Float.nan } in
  let nan_rec = { (sample_record ()) with History.r_queries = [ q ] } in
  (match History.of_json (History.to_json nan_rec) with
  | Ok r' ->
    Alcotest.(check bool) "nan mean_qerror survives as nan" true
      (Float.is_nan (List.hd r'.History.r_queries).History.q_mean_qerror)
  | Error e -> Alcotest.fail ("nan round-trip failed: " ^ e));
  (match History.to_json nan_rec with
  | Json.Obj fields ->
    let v1 =
      Json.Obj
        (List.map
           (function
             | "schema_version", _ -> ("schema_version", Json.Int 1)
             | kv -> kv)
           fields)
    in
    (match History.of_json v1 with
    | Ok r' ->
      Alcotest.(check bool) "v1 record still loads" true
        (Float.is_nan (List.hd r'.History.r_queries).History.q_mean_qerror)
    | Error e -> Alcotest.fail ("v1 record rejected: " ^ e));
    (* A v2 record carries no search_scale; it must load as []. *)
    let v2 =
      Json.Obj
        (List.filter_map
           (function
             | "schema_version", _ -> Some ("schema_version", Json.Int 2)
             | "search_scale", _ -> None
             | kv -> Some kv)
           fields)
    in
    (match History.of_json v2 with
    | Ok r' ->
      Alcotest.(check bool) "v2 record loads with empty search_scale" true
        (r'.History.r_search_scale = [])
    | Error e -> Alcotest.fail ("v2 record rejected: " ^ e));
    (* A v3 record predates the provenance fields; they must load as
       nan / []. *)
    let v3 =
      Json.Obj
        (List.filter_map
           (function
             | "schema_version", _ -> Some ("schema_version", Json.Int 3)
             | ("provenance_overhead_pct" | "whynot_smoke"), _ -> None
             | kv -> Some kv)
           fields)
    in
    (match History.of_json v3 with
    | Ok r' ->
      Alcotest.(check bool) "v3 record loads with nan overhead" true
        (Float.is_nan r'.History.r_provenance_overhead_pct);
      Alcotest.(check bool) "v3 record loads with empty whynot_smoke" true
        (r'.History.r_whynot_smoke = [])
    | Error e -> Alcotest.fail ("v3 record rejected: " ^ e))
  | _ -> Alcotest.fail "to_json is not an object");
  (* An over-budget width's nan exhaustive time survives as nan. *)
  let nan_scale =
    { (sample_record ()) with
      History.r_search_scale =
        [ { (sample_scale 12 30.0) with History.s_exhaustive_seconds = Float.nan } ] }
  in
  (match History.of_json (History.to_json nan_scale) with
  | Ok r' ->
    Alcotest.(check bool) "nan exhaustive_seconds survives as nan" true
      (Float.is_nan (List.hd r'.History.r_search_scale).History.s_exhaustive_seconds)
  | Error e -> Alcotest.fail ("nan scale round-trip failed: " ^ e));
  (* Version gate: a record from the future must be rejected. *)
  match History.to_json r with
  | Json.Obj fields ->
    let bumped =
      Json.Obj
        (List.map
           (function
             | "schema_version", _ -> ("schema_version", Json.Int 99)
             | kv -> kv)
           fields)
    in
    (match History.of_json bumped with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "schema_version 99 accepted")
  | _ -> Alcotest.fail "to_json is not an object"

let test_history_append_load () =
  let path = Filename.temp_file "oodb_bench" ".jsonl" in
  History.append path (sample_record ~sha:"aaa" ());
  History.append path (sample_record ~sha:"bbb" ~exec:0.011 ());
  (match History.load path with
  | Ok [ a; b ] ->
    Alcotest.(check string) "first sha" "aaa" a.History.r_git_sha;
    Alcotest.(check string) "second sha" "bbb" b.History.r_git_sha
  | Ok l -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length l))
  | Error e -> Alcotest.fail ("load failed: " ^ e));
  (* A corrupt line fails the load with its line number. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"schema_version\": \"nope\"}\n";
  close_out oc;
  (match History.load path with
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error names line 3 (%s)" e)
      true
      (String.exists (fun c -> c = '3') e)
  | Ok _ -> Alcotest.fail "corrupt line accepted");
  Sys.remove path

let test_history_gate () =
  let old_rec = sample_record ~sha:"old" ~opt:0.002 ~exec:0.010 () in
  (* Identical records: clean. *)
  let c =
    History.compare_records ~old_rec ~new_rec:{ old_rec with History.r_git_sha = "new" } ()
  in
  Alcotest.(check bool) "identical records do not regress" false (History.regressed c);
  (* A genuine 2x execution slowdown (10ms -> 20ms) clears both the
     relative threshold and the absolute floor. *)
  let slow = sample_record ~sha:"slow" ~opt:0.002 ~exec:0.020 () in
  let c = History.compare_records ~old_rec ~new_rec:slow () in
  Alcotest.(check bool) "2x slowdown regresses" true (History.regressed c);
  let flagged =
    List.filter (fun d -> d.History.d_regressed) c.History.c_deltas
  in
  Alcotest.(check int) "both queries' exec metric flagged" 2 (List.length flagged);
  List.iter
    (fun d ->
      Alcotest.(check string) "the exec metric is what regressed"
        "exec_min_seconds" d.History.d_metric;
      Alcotest.(check (float 1e-9)) "ratio is 2" 2.0 d.History.d_ratio)
    flagged;
  (* A 2.5x ratio on a 0.1ms baseline is under the absolute floor:
     sub-millisecond wobble must never fail a build. *)
  let tiny_old = sample_record ~sha:"t0" ~opt:0.0001 ~exec:0.0001 () in
  let tiny_new = sample_record ~sha:"t1" ~opt:0.00025 ~exec:0.00025 () in
  let c = History.compare_records ~old_rec:tiny_old ~new_rec:tiny_new () in
  Alcotest.(check bool) "sub-floor blow-up does not regress" false (History.regressed c);
  (* ...unless the caller lowers the floor. *)
  let c =
    History.compare_records ~min_seconds:1e-6 ~old_rec:tiny_old ~new_rec:tiny_new ()
  in
  Alcotest.(check bool) "lowered floor flags it" true (History.regressed c);
  (* Query-set drift is reported, not silently ignored. *)
  let dropped =
    { old_rec with
      History.r_git_sha = "drift";
      r_queries = [ sample_query "q1" 0.002 0.010; sample_query "q9" 0.002 0.010 ] }
  in
  let c = History.compare_records ~old_rec ~new_rec:dropped () in
  Alcotest.(check (list string)) "missing queries listed" [ "q2" ] c.History.c_missing;
  Alcotest.(check (list string)) "added queries listed" [ "q9" ] c.History.c_added;
  (* A wide-join scaling blow-up is gated like any other wall time:
     width 10 going 2.0s -> 6.0s is a chain10 regression. *)
  let scale_slow =
    { old_rec with
      History.r_git_sha = "scale";
      r_search_scale = [ sample_scale 4 0.01; sample_scale 10 6.0 ] }
  in
  let c = History.compare_records ~old_rec ~new_rec:scale_slow () in
  Alcotest.(check bool) "guided scaling regression flagged" true (History.regressed c);
  (match List.filter (fun d -> d.History.d_regressed) c.History.c_deltas with
  | [ d ] ->
    Alcotest.(check string) "reported under the chain name" "chain10" d.History.d_query;
    Alcotest.(check string) "as the guided metric" "guided_opt_seconds" d.History.d_metric
  | ds -> Alcotest.failf "expected exactly the chain10 delta, got %d" (List.length ds))

(* ------------------------------------------------------------------ *)
(* Deterministic JSON                                                   *)

let test_json_deterministic () =
  let a =
    Json.Obj
      [ ("zeta", Json.Int 1);
        ("alpha", Json.Obj [ ("b", Json.Bool true); ("a", Json.Null) ]) ]
  and b =
    Json.Obj
      [ ("alpha", Json.Obj [ ("a", Json.Null); ("b", Json.Bool true) ]);
        ("zeta", Json.Int 1) ]
  in
  Alcotest.(check string) "key order does not leak into the rendering"
    (Json.to_string ~minify:true a) (Json.to_string ~minify:true b);
  Alcotest.(check string) "indented rendering agrees too"
    (Json.to_string a) (Json.to_string b)

(* ------------------------------------------------------------------ *)
(* Ring drops are loud                                                  *)

let test_timeline_drop_warning () =
  let tr = Trace.create ~capacity:16 () in
  ignore
    (Opt.optimize ~trace:(Trace.sink tr)
       (Oodb_catalog.Open_oodb_catalog.catalog_with_indexes ())
       Q.q1);
  Alcotest.(check bool) "the tiny ring dropped events" true (Trace.dropped tr > 0);
  let rendered =
    Format.asprintf "%a" (fun ppf tr -> Trace.pp_timeline ppf tr) tr
  in
  Alcotest.(check bool)
    "timeline leads with the drop warning" true
    (String.length rendered >= 8 && String.sub rendered 0 8 = "WARNING:");
  let j = Trace.to_json tr in
  (match Option.bind (Json.member "dropped" j) Json.to_int with
  | Some n -> Alcotest.(check bool) "top-level dropped count" true (n > 0)
  | None -> Alcotest.fail "top-level dropped missing");
  (match Json.member "dropped_warning" j with
  | Some (Json.String s) ->
    Alcotest.(check bool) "warning mentions the drop count" true
      (String.length s > 0)
  | _ -> Alcotest.fail "dropped_warning missing");
  (* And a ring that kept everything carries no warning. *)
  let quiet = Trace.create () in
  Trace.sink quiet (Engine.Group_created { group = 0 });
  match Json.member "dropped_warning" (Trace.to_json quiet) with
  | None -> ()
  | Some _ -> Alcotest.fail "dropped_warning present with zero drops"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "observatory"
    [ ( "histograms",
        [ Alcotest.test_case "exact degenerate percentiles" `Quick
            test_hist_exact_percentiles;
          Alcotest.test_case "monotone and bounded" `Quick
            test_hist_monotone_and_bounded ] );
      ( "spans",
        [ Alcotest.test_case "well-formed for q1-q4 at batch 1 and 64" `Quick
            test_span_well_formed;
          Alcotest.test_case "covers every pipeline phase" `Quick
            test_span_covers_pipeline_phases;
          Alcotest.test_case "chrome export balanced and typed" `Quick
            test_chrome_export_balanced;
          Alcotest.test_case "durations agree with the profiler" `Quick
            test_spans_agree_with_profiler;
          Alcotest.test_case "batch-rows histogram" `Quick
            test_batch_rows_histogram ] );
      ( "history",
        [ Alcotest.test_case "record round-trip and version gate" `Quick
            test_history_roundtrip;
          Alcotest.test_case "append and load JSONL" `Quick
            test_history_append_load;
          Alcotest.test_case "regression gate" `Quick test_history_gate ] );
      ( "rendering",
        [ Alcotest.test_case "deterministic JSON" `Quick test_json_deterministic;
          Alcotest.test_case "timeline drop warning" `Quick
            test_timeline_drop_warning ] ) ]
