(* The observability layer: JSON codec, metrics registry, trace ring and
   aggregates, per-operator profiling, and the report builder.

   The two load-bearing invariants:
   - aggregating a search's event stream reproduces the engine's own
     rule counters exactly (so [oodb optimize --trace] tables equal the
     [Verify.rules] report), and
   - per-operator exclusive I/O deltas sum to the whole-query
     [io_report] totals (inclusive measurement telescopes). *)

module Json = Oodb_util.Json
module Ring = Oodb_obs.Ring
module Metrics = Oodb_obs.Metrics
module Trace = Oodb_obs.Trace
module Profile = Oodb_obs.Profile
module Report = Oodb_obs.Report
module Opt = Open_oodb.Optimizer
module Engine = Open_oodb.Model.Engine
module Logical = Oodb_algebra.Logical
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Q = Oodb_workloads.Queries

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)

let test_json_print () =
  let v =
    Json.Obj
      [ ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x\"y\n" ]);
        ("c", Json.float 2.5) ]
  in
  Alcotest.(check string)
    "minified" {|{"a":1,"b":[true,null,"x\"y\n"],"c":2.5}|}
    (Json.to_string ~minify:true v);
  Alcotest.(check bool) "indented mentions key" true
    (String.length (Json.to_string v) > String.length "{\"a\":1}")

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("name", Json.String "q1");
        ("esc", Json.String "tab\t nl\n quote\" back\\ unicode \xe2\x86\x92");
        ("n", Json.Int (-42));
        ("x", Json.float 0.1);
        ("big", Json.float 1e300);
        ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("null", Json.Null);
        ("flag", Json.Bool false) ]
  in
  (* to_string renders object keys sorted, so compare canonically (a
     re-render) rather than structurally; member lookups check values. *)
  let canonical v = Json.to_string ~minify:true v in
  (match Json.of_string (Json.to_string v) with
  | Ok v' ->
    Alcotest.(check string) "indented round-trip" (canonical v) (canonical v');
    Alcotest.(check (option int)) "int survives" (Some (-42))
      (Option.bind (Json.member "n" v') Json.to_int)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  match Json.of_string (Json.to_string ~minify:true v) with
  | Ok v' -> Alcotest.(check string) "minified round-trip" (canonical v) (canonical v')
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_json_parse () =
  (match Json.of_string {| { "u": "Aé", "e": 1.5e2, "neg": -3 } |} with
  | Ok v ->
    Alcotest.(check (option string))
      "unicode escapes decode to UTF-8"
      (Some "A\xc3\xa9")
      (match Json.member "u" v with Some (Json.String s) -> Some s | _ -> None);
    Alcotest.(check (option (float 1e-9)))
      "exponent" (Some 150.0)
      (Option.bind (Json.member "e" v) Json.to_float);
    Alcotest.(check (option int))
      "negative int" (Some (-3))
      (Option.bind (Json.member "neg" v) Json.to_int)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

let test_json_nonfinite () =
  Alcotest.(check bool) "nan becomes null" true (Json.float Float.nan = Json.Null);
  Alcotest.(check bool) "inf becomes null" true (Json.float Float.infinity = Json.Null)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "queries";
  Metrics.incr ~by:4 m "queries";
  Metrics.set m "buffer_pages" 256.0;
  Metrics.observe m "opt" 0.5;
  Metrics.observe m "opt" 1.5;
  let snap = Metrics.snapshot m in
  Alcotest.(check bool) "counter" true (Metrics.find snap "queries" = Some (Metrics.Counter 5));
  Alcotest.(check bool) "gauge" true
    (Metrics.find snap "buffer_pages" = Some (Metrics.Gauge 256.0));
  (match Metrics.find snap "opt" with
  | Some (Metrics.Timer { total; count; max }) ->
    Alcotest.(check (float 1e-9)) "timer total" 2.0 total;
    Alcotest.(check int) "timer count" 2 count;
    Alcotest.(check (float 1e-9)) "timer max" 1.5 max
  | _ -> Alcotest.fail "timer missing");
  Alcotest.(check (list string))
    "snapshot sorted by name"
    [ "buffer_pages"; "opt"; "queries" ]
    (List.map fst snap)

let test_metrics_kinds_and_diff () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "kind clash raises"
    (Invalid_argument "Metrics: \"x\" is a counter, used as a gauge") (fun () ->
      Metrics.set m "x" 1.0);
  let _, delta =
    Metrics.scoped m (fun () ->
        Metrics.incr ~by:2 m "x";
        Metrics.observe m "t" 1.0)
  in
  Alcotest.(check bool) "scoped counter delta" true
    (Metrics.find delta "x" = Some (Metrics.Counter 2));
  Alcotest.(check bool) "scoped timer delta" true
    (match Metrics.find delta "t" with
    | Some (Metrics.Timer { count = 1; _ }) -> true
    | _ -> false);
  let _, quiet = Metrics.scoped m (fun () -> ()) in
  Alcotest.(check int) "unchanged metrics drop out of the diff" 0 (List.length quiet)

(* ------------------------------------------------------------------ *)
(* Ring                                                                 *)

let test_ring () =
  let r = Ring.create 4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  for i = 0 to 9 do
    Ring.push r i
  done;
  Alcotest.(check int) "seen" 10 (Ring.seen r);
  Alcotest.(check int) "length" 4 (Ring.length r);
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  Alcotest.(check (list (pair int int)))
    "retains newest with global sequence numbers"
    [ (6, 6); (7, 7); (8, 8); (9, 9) ]
    (Ring.to_list r);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create 0))

(* ------------------------------------------------------------------ *)
(* Trace vs the engine's own counters                                   *)

let test_trace_matches_rule_counters () =
  List.iter
    (fun (name, q) ->
      let tr = Trace.create () in
      let outcome =
        Opt.optimize ~trace:(Trace.sink tr)
          (Oodb_catalog.Open_oodb_catalog.catalog_with_indexes ())
          q
      in
      let from_engine = Engine.rule_counters outcome.Opt.memo in
      let from_trace = Trace.per_rule tr in
      Alcotest.(check (list (triple string int int)))
        (Printf.sprintf "%s: per-rule table from events == rule_counters" name)
        from_engine from_trace;
      let s = outcome.Opt.stats and t = Trace.totals tr in
      Alcotest.(check int)
        (name ^ ": candidates") s.Engine.candidates t.Trace.candidates;
      Alcotest.(check int)
        (name ^ ": memo hits") s.Engine.phys_memo_hits t.Trace.memo_hits;
      Alcotest.(check int)
        (name ^ ": trules tried") s.Engine.trule_tried t.Trace.trules_tried;
      Alcotest.(check int)
        (name ^ ": trules fired") s.Engine.trule_fired t.Trace.trules_fired;
      Alcotest.(check int)
        (name ^ ": enforcer uses") s.Engine.enforcer_uses t.Trace.enforcer_inserts)
    Q.all

let test_trace_ring_bounded_aggregates_exact () =
  (* A tiny ring forces heavy wrap-around; aggregates must not care. *)
  let tr = Trace.create ~capacity:16 () in
  let outcome =
    Opt.optimize ~trace:(Trace.sink tr)
      (Oodb_catalog.Open_oodb_catalog.catalog_with_indexes ())
      Q.q1
  in
  Alcotest.(check int) "window is capacity" 16 (List.length (Trace.events tr));
  Alcotest.(check bool) "events were dropped" true (Trace.dropped tr > 0);
  Alcotest.(check (list (triple string int int)))
    "aggregates exact despite drops"
    (Engine.rule_counters outcome.Opt.memo)
    (Trace.per_rule tr)

(* ------------------------------------------------------------------ *)
(* Profiling                                                            *)

let sum_exclusive prof =
  let rec walk acc (n : Profile.node) =
    List.fold_left walk
      (let e = n.Profile.exclusive in
       let sq, rr, w, bh, bm, be, sim = acc in
       ( sq + e.Profile.seq_reads,
         rr + e.Profile.rand_reads,
         w + e.Profile.writes,
         bh + e.Profile.buffer_hits,
         bm + e.Profile.buffer_misses,
         be + e.Profile.buffer_evictions,
         sim +. e.Profile.simulated_seconds ))
      n.Profile.children
  in
  walk (0, 0, 0, 0, 0, 0, 0.0) prof

let test_profile_deltas_sum_to_totals () =
  let db = Lazy.force Helpers.small_db in
  (* The telescoping invariant must hold for any batch granularity: per
     tuple (size 1) and vectorized (size 64) runs both measure per
     next_batch, and the exclusive deltas still sum exactly. *)
  List.iter
    (fun batch_size ->
      let config = { Oodb_cost.Config.default with Oodb_cost.Config.batch_size } in
      List.iter
        (fun (name, q) ->
          let outcome = Opt.optimize (Db.catalog db) q in
          let plan = Opt.plan_exn outcome in
          let rows, report, prof = Profile.run ~config db plan in
          let sq, rr, w, bh, bm, be, sim = sum_exclusive prof in
          let lbl s = Printf.sprintf "%s (batch %d): %s" name batch_size s in
          Alcotest.(check int) (lbl "rows") (List.length rows) report.Executor.rows;
          Alcotest.(check int) (lbl "seq reads") report.Executor.seq_reads sq;
          Alcotest.(check int) (lbl "rand reads") report.Executor.rand_reads rr;
          Alcotest.(check int) (lbl "writes") report.Executor.writes w;
          Alcotest.(check int) (lbl "buffer hits") report.Executor.buffer_hits bh;
          Alcotest.(check int) (lbl "buffer misses") report.Executor.buffer_misses bm;
          Alcotest.(check int) (lbl "buffer evictions") report.Executor.buffer_evictions be;
          Alcotest.(check (float 1e-6))
            (lbl "simulated seconds") report.Executor.simulated_seconds sim;
          (* profiling must not perturb results or measured totals *)
          let rows', report' = Executor.run_measured ~config db plan in
          Helpers.check_same_rows (lbl "same rows as unprofiled run") rows' rows;
          Alcotest.(check int)
            (lbl "same seq reads as unprofiled run")
            report'.Executor.seq_reads report.Executor.seq_reads)
        [ ("q1", Q.q1); ("q2", Q.q2); ("q3", Q.q3); ("q4", Q.q4) ])
    [ 1; 64 ]

let test_profile_qerror_perfect () =
  (* After refreshing catalog statistics from the stored data, a bare
     extent scan's estimate is the exact collection cardinality, so every
     node of the plan has q-error exactly 1.0. *)
  let db = Lazy.force Helpers.small_db in
  ignore (Oodb_exec.Analyze.refresh db);
  let q = Logical.get ~coll:"Cities" ~binding:"c" in
  let outcome = Opt.optimize (Db.catalog db) q in
  let _, _, prof = Profile.run db (Opt.plan_exn outcome) in
  let rec check (n : Profile.node) =
    Alcotest.(check (float 0.0))
      (Format.asprintf "q-error of %a" Open_oodb.Physical.pp n.Profile.alg)
      1.0 n.Profile.q_error;
    List.iter check n.Profile.children
  in
  check prof

let test_qerror_clamps () =
  Alcotest.(check (float 0.0)) "exact" 1.0 (Profile.q_error ~est:42.0 ~actual:42.0);
  Alcotest.(check (float 0.0)) "both empty" 1.0 (Profile.q_error ~est:0.0 ~actual:0.0);
  Alcotest.(check (float 1e-9)) "2x under" 2.0 (Profile.q_error ~est:50.0 ~actual:100.0);
  Alcotest.(check (float 1e-9)) "2x over" 2.0 (Profile.q_error ~est:100.0 ~actual:50.0)

(* ------------------------------------------------------------------ *)
(* Reports                                                              *)

let test_report_json_parses () =
  let db = Lazy.force Helpers.small_db in
  let registry = Metrics.create () in
  let reports =
    List.map
      (fun (name, q) -> Report.collect ~registry ~trace_capacity:64 db ~name q)
      [ ("q1", Q.q1); ("q4", Q.q4) ]
  in
  let text = Json.to_string (Report.workload_json ~registry reports) in
  match Json.of_string text with
  | Error m -> Alcotest.failf "workload report does not parse: %s" m
  | Ok v ->
    Alcotest.(check (option int))
      "schema version" (Some 1)
      (Option.bind (Json.member "schema_version" v) Json.to_int);
    (match Json.member "queries" v with
    | Some (Json.List qs) ->
      Alcotest.(check int) "one record per query" 2 (List.length qs);
      List.iter
        (fun q ->
          Alcotest.(check bool) "has optimizer section" true
            (Json.member "optimizer" q <> None);
          Alcotest.(check bool) "has execution section" true
            (Json.member "execution" q <> None))
        qs
    | _ -> Alcotest.fail "queries list missing");
    Alcotest.(check bool) "has metrics section" true (Json.member "metrics" v <> None)

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "printing" `Quick test_json_print;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parsing" `Quick test_json_parse;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite ] );
      ( "metrics",
        [ Alcotest.test_case "counters, gauges, timers" `Quick test_metrics_basics;
          Alcotest.test_case "kind safety and scoped diff" `Quick
            test_metrics_kinds_and_diff ] );
      ("ring", [ Alcotest.test_case "bounded with sequence numbers" `Quick test_ring ]);
      ( "trace",
        [ Alcotest.test_case "events reproduce rule counters" `Quick
            test_trace_matches_rule_counters;
          Alcotest.test_case "aggregates exact after wrap-around" `Quick
            test_trace_ring_bounded_aggregates_exact ] );
      ( "profile",
        [ Alcotest.test_case "exclusive deltas sum to io_report" `Quick
            test_profile_deltas_sum_to_totals;
          Alcotest.test_case "perfect estimate has q-error 1.0" `Quick
            test_profile_qerror_perfect;
          Alcotest.test_case "q-error clamps" `Quick test_qerror_clamps ] );
      ( "report",
        [ Alcotest.test_case "workload JSON parses" `Quick test_report_json_parses ] ) ]
