module Prng = Oodb_util.Prng
module Pretty = Oodb_util.Pretty
module Vec = Oodb_util.Vec

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let take g = List.init 100 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (take a) (take b);
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true (take (Prng.create 42) <> take c)

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 13 in
    Alcotest.(check bool) "int bound" true (v >= 0 && v < 13);
    let w = Prng.int_in g 5 9 in
    Alcotest.(check bool) "int_in range" true (w >= 5 && w <= 9);
    let f = Prng.float g 2.5 in
    Alcotest.(check bool) "float bound" true (f >= 0.0 && f < 2.5)
  done

let test_prng_copy () =
  let g = Prng.create 1 in
  ignore (Prng.int g 10);
  let h = Prng.copy g in
  Alcotest.(check int) "copy continues identically" (Prng.int g 1000) (Prng.int h 1000)

let test_prng_pick_shuffle () =
  let g = Prng.create 3 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Prng.pick g arr) arr)
  done;
  let arr2 = Array.init 20 (fun i -> i) in
  Prng.shuffle g arr2;
  Alcotest.(check (list int)) "shuffle is a permutation" (List.init 20 (fun i -> i))
    (List.sort compare (Array.to_list arr2))

let test_pretty_spine () =
  let t = Pretty.Node ("a", [ Pretty.Node ("b", [ Pretty.Node ("c", []) ]) ]) in
  Alcotest.(check string) "vertical spine" "a\n|\nb\n|\nc" (Pretty.render t)

let test_pretty_fanout () =
  let t = Pretty.Node ("join", [ Pretty.Node ("l", []); Pretty.Node ("r", []) ]) in
  Alcotest.(check string) "fanout indents" "join\n|\n    l\n|\n    r" (Pretty.render t)

let test_pretty_compact () =
  let t = Pretty.Node ("a", [ Pretty.Node ("b", []); Pretty.Node ("c", []) ]) in
  Alcotest.(check string) "compact" "a(b, c)" (Pretty.render_compact t)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check int) "fresh vector is empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "push returns the new index" i (Vec.push v (i * 10))
  done;
  Alcotest.(check int) "length tracks pushes" 100 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get reads back" (i * 10) (Vec.get v i)
  done;
  Vec.set v 42 7;
  Alcotest.(check int) "set overwrites in place" 7 (Vec.get v 42)

let test_vec_bounds () =
  let v = Vec.create ~capacity:4 () in
  ignore (Vec.push v "x");
  List.iter
    (fun i ->
      Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
          ignore (Vec.get v i));
      Alcotest.check_raises "set out of bounds" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
          Vec.set v i "y"))
    [ -1; 1; 5 ]

let test_vec_traversals () =
  let v = Vec.create () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check (list int)) "to_list in push order" [ 3; 1; 4; 1; 5 ] (Vec.to_list v);
  Alcotest.(check int) "fold_left sums" 14 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri pairs indexes" [ (0, 3); (1, 1); (2, 4); (3, 1); (4, 5) ]
    (List.rev !acc);
  let n = ref 0 in
  Vec.iter (fun _ -> incr n) v;
  Alcotest.(check int) "iter visits each element once" 5 !n

let prop_prng_uniformish =
  QCheck2.Test.make ~name:"int bound respected for random bounds" ~count:200
    QCheck2.Gen.(pair small_signed_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      List.for_all (fun v -> v >= 0 && v < bound) (List.init 50 (fun _ -> Prng.int g bound)))

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "pick and shuffle" `Quick test_prng_pick_shuffle;
          QCheck_alcotest.to_alcotest prop_prng_uniformish ] );
      ( "vec",
        [ Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "bounds checks" `Quick test_vec_bounds;
          Alcotest.test_case "traversals" `Quick test_vec_traversals ] );
      ( "pretty",
        [ Alcotest.test_case "spine rendering" `Quick test_pretty_spine;
          Alcotest.test_case "fanout rendering" `Quick test_pretty_fanout;
          Alcotest.test_case "compact rendering" `Quick test_pretty_compact ] ) ]
