(* Differential testing of the vectorized execution engine.

   Batch size is an execution knob, never a semantic one: the same plan
   must produce the same row multiset at every batch size, with size 1
   degrading to the classic tuple-at-a-time engine. This suite checks
   that invariant over the paper workload on two catalogs and over a
   seeded random query population (the same generator walk the plan
   cache's fuzz uses), verifying every optimized plan with the static
   checker before executing it. *)

module Value = Oodb_storage.Value
module Pred = Oodb_algebra.Pred
module Logical = Oodb_algebra.Logical
module Config = Oodb_cost.Config
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Opt = Open_oodb.Optimizer
module Verify = Oodb_verify.Verify
module Prng = Oodb_util.Prng
module Q = Oodb_workloads.Queries

let batch_sizes = [ 1; 7; 64; 1024 ]

let config_of batch_size = { Config.default with Config.batch_size }

let run_at db plan batch_size =
  Executor.run ~config:(config_of batch_size) db plan

let check_plan name cat plan =
  match Verify.plan cat plan with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: plan fails verification:@.%a" name Verify.pp_violations vs

(* Same rows at every batch size, with batch 1 as the reference. *)
let check_batch_invariance name db plan =
  check_plan name (Db.catalog db) plan;
  let reference = run_at db plan 1 in
  List.iter
    (fun bs ->
      Helpers.check_same_rows
        (Printf.sprintf "%s: batch %d == batch 1" name bs)
        reference (run_at db plan bs))
    (List.filter (fun bs -> bs <> 1) batch_sizes)

let test_workload_batch_invariance_small () =
  let db = Lazy.force Helpers.small_db in
  List.iter
    (fun (name, q) ->
      let plan = Opt.plan_exn (Opt.optimize (Db.catalog db) q) in
      check_batch_invariance name db plan)
    Q.all

let test_workload_batch_invariance_medium () =
  let db = Lazy.force Helpers.medium_db in
  List.iter
    (fun (name, q) ->
      let plan = Opt.plan_exn (Opt.optimize (Db.catalog db) q) in
      check_batch_invariance name db plan)
    Q.all

(* Rule configurations change plan shapes (merge join vs hash join,
   assembly on/off); every shape must be batch-invariant, not just the
   default winner's. *)
let test_rule_configs_batch_invariant () =
  let db = Lazy.force Helpers.small_db in
  let configs =
    [ ("default", Open_oodb.Options.default);
      ("no-assembly", Open_oodb.Options.disable "mat-assembly" Open_oodb.Options.default);
      ("no-hash-join", Open_oodb.Options.disable "hash-join" Open_oodb.Options.default);
      ( "no-pointer-join",
        Open_oodb.Options.disable "pointer-join" Open_oodb.Options.default ) ]
  in
  List.iter
    (fun (cname, options) ->
      List.iter
        (fun (qname, q) ->
          match (Opt.optimize ~options (Db.catalog db) q).Opt.plan with
          | None -> ()
          | Some plan ->
            check_batch_invariance (Printf.sprintf "%s/%s" cname qname) db plan)
        Q.all)
    configs

(* ------------------------------------------------------------------ *)
(* Fuzz: seeded random queries (the shared Helpers.Fuzz population;
   fewer seeds than the fingerprint tests because each one executes at
   four batch sizes) *)

let n_fuzz = 80

let test_fuzz_batch_invariance () =
  let db = Lazy.force Helpers.small_db in
  let cat = Db.catalog db in
  for seed = 1 to n_fuzz do
    let q = Helpers.Fuzz.gen_expr ~seed ~root_name:"x" in
    (match Logical.well_formed cat q with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: ill-formed query: %s" seed m);
    match (Opt.optimize cat q).Opt.plan with
    | None -> Alcotest.failf "seed %d: no plan" seed
    | Some plan -> check_batch_invariance (Printf.sprintf "seed %d" seed) db plan
  done

(* The shim must also interleave coherently with batch pulls: consuming
   a prefix tuple-wise and the rest batch-wise loses and duplicates
   nothing. *)
let test_mixed_tuple_and_batch_consumption () =
  let db = Lazy.force Helpers.small_db in
  let plan = Opt.plan_exn (Opt.optimize (Db.catalog db) Q.q1) in
  let whole =
    Oodb_exec.Iterator.to_list (Executor.iterator ~config:(config_of 64) db plan)
  in
  let it = Executor.iterator ~config:(config_of 64) db plan in
  Oodb_exec.Iterator.open_ it;
  let prefix = ref [] in
  for _ = 1 to 5 do
    match Oodb_exec.Iterator.next it with
    | Some env -> prefix := env :: !prefix
    | None -> ()
  done;
  let rec drain acc =
    match Oodb_exec.Iterator.next_batch it with
    | Some b -> drain (acc @ Oodb_exec.Batch.to_list b)
    | None -> acc
  in
  let mixed = List.rev !prefix @ drain [] in
  Oodb_exec.Iterator.close it;
  Alcotest.(check int) "same row count" (List.length whole) (List.length mixed);
  Helpers.check_same_rows "mixed consumption = batch consumption"
    (Executor.rows_of plan whole) (Executor.rows_of plan mixed)

let () =
  Alcotest.run "vectorized"
    [ ( "workload",
        [ Alcotest.test_case "small catalog, batch sizes {1,7,64,1024}" `Quick
            test_workload_batch_invariance_small;
          Alcotest.test_case "medium catalog, batch sizes {1,7,64,1024}" `Quick
            test_workload_batch_invariance_medium;
          Alcotest.test_case "alternate rule configurations" `Quick
            test_rule_configs_batch_invariant ] );
      ( "fuzz",
        [ Alcotest.test_case "seeded random plans batch-invariant" `Quick
            test_fuzz_batch_invariance ] );
      ( "protocol",
        [ Alcotest.test_case "mixed tuple/batch consumption" `Quick
            test_mixed_tuple_and_batch_consumption ] ) ]
