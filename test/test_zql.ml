module Value = Oodb_storage.Value
module Logical = Oodb_algebra.Logical
module OC = Oodb_catalog.Open_oodb_catalog
module Q = Oodb_workloads.Queries

let cat = OC.catalog_with_indexes ()

let compile s =
  match Zql.Simplify.compile cat s with
  | Ok q -> q
  | Error m -> Alcotest.failf "unexpected ZQL error: %s" m

let expect_error s =
  match Zql.Simplify.compile cat s with
  | Ok _ -> Alcotest.failf "expected error for %s" s
  | Error m -> m

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)

let test_lexer_basic () =
  match Zql.Lexer.tokenize {| SELECT e.name FROM e IN Employees WHERE e.age >= 32 |} with
  | Error m -> Alcotest.fail m
  | Ok tokens ->
    Alcotest.(check int) "token count" 15 (List.length tokens);
    Alcotest.(check bool) "keywords case-insensitive" true
      (match Zql.Lexer.tokenize "select from where" with
      | Ok [ Zql.Lexer.SELECT; Zql.Lexer.FROM; Zql.Lexer.WHERE; Zql.Lexer.EOF ] -> true
      | _ -> false)

let test_lexer_literals () =
  match Zql.Lexer.tokenize {| 42 4.5 "hi \"there\"" true false |} with
  | Ok [ Zql.Lexer.INT 42; Zql.Lexer.FLOAT 4.5; Zql.Lexer.STRING "hi \"there\"";
         Zql.Lexer.TRUE; Zql.Lexer.FALSE; Zql.Lexer.EOF ] -> ()
  | Ok _ -> Alcotest.fail "unexpected tokens"
  | Error m -> Alcotest.fail m

let test_lexer_dot_vs_float () =
  (* [e.age] must lex as ident dot ident, [1.5] as a float *)
  match Zql.Lexer.tokenize "e.age 1.5 t.x" with
  | Ok [ Zql.Lexer.IDENT "e"; Zql.Lexer.DOT; Zql.Lexer.IDENT "age"; Zql.Lexer.FLOAT 1.5;
         Zql.Lexer.IDENT "t"; Zql.Lexer.DOT; Zql.Lexer.IDENT "x"; Zql.Lexer.EOF ] -> ()
  | Ok _ -> Alcotest.fail "unexpected tokens"
  | Error m -> Alcotest.fail m

let test_lexer_comments () =
  match Zql.Lexer.tokenize "SELECT -- a comment\n1" with
  | Ok [ Zql.Lexer.SELECT; Zql.Lexer.INT 1; Zql.Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comment not skipped"

let test_lexer_errors () =
  (match Zql.Lexer.tokenize "a = b" with
  | Error m -> Alcotest.(check bool) "single = rejected" true (contains m "==")
  | Ok _ -> Alcotest.fail "single = should be rejected");
  match Zql.Lexer.tokenize "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string"

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

let test_parse_figure1 () =
  let q =
    Zql.Parser.parse_exn
      {| SELECT Newobject(e.name, d.name)
         FROM Employee e IN Employees, Department d IN Departments
         WHERE d.floor == 3 && e.age >= 32 && e.last_raise >= date(1992,1,1)
            && e.dept == d; |}
  in
  Alcotest.(check int) "two ranges" 2 (List.length q.Zql.Ast.q_from);
  Alcotest.(check int) "two projections" 2 (List.length q.Zql.Ast.q_select);
  match q.Zql.Ast.q_where with
  | Some c -> Alcotest.(check int) "four conjuncts" 4 (List.length (Zql.Ast.conjuncts c))
  | None -> Alcotest.fail "missing where"

let test_parse_exists () =
  let q =
    Zql.Parser.parse_exn
      {| SELECT * FROM t IN Tasks
         WHERE t.time == 100 && EXISTS (SELECT m FROM m IN t.team_members WHERE m.name == "Fred") |}
  in
  match q.Zql.Ast.q_where with
  | Some c -> (
    match Zql.Ast.conjuncts c with
    | [ Zql.Ast.Cmp _; Zql.Ast.Exists sub ] ->
      Alcotest.(check bool) "set-path range" true
        (match (List.hd sub.Zql.Ast.q_from).Zql.Ast.r_src with
        | Zql.Ast.Set_path _ -> true
        | Zql.Ast.Coll _ -> false)
    | _ -> Alcotest.fail "wrong conjunct structure")
  | None -> Alcotest.fail "missing where"

let test_parse_roundtrip_pp () =
  let text = {| SELECT c.name AS n FROM c IN Cities WHERE c.population >= 5 |} in
  let q = Zql.Parser.parse_exn text in
  let printed = Format.asprintf "%a" Zql.Ast.pp_query q in
  let q2 = Zql.Parser.parse_exn printed in
  (* token locations differ between the two inputs, so compare the
     printed forms, which elide them *)
  Alcotest.(check string) "pp . parse . pp = pp" printed (Format.asprintf "%a" Zql.Ast.pp_query q2)

(* Property over the scenario generator's query population: printing a
   generated AST with [to_zql] and parsing the text back simplifies to
   the same logical expression as the AST itself. Parsed trees carry
   real source locations while generated ones use [Loc.none], so the
   comparison is after simplification, where locations are gone. *)
let test_to_zql_roundtrip_generated () =
  for index = 0 to 11 do
    let sc = Oodb_scenario.Scenario.generate ~seed:7 ~index () in
    let gcat = Oodb_scenario.Scenario.base_catalog sc.Oodb_scenario.Scenario.sc_schema in
    List.iter
      (fun (qc : Oodb_scenario.Scenario.query_case) ->
        let printed = Zql.Ast.to_zql qc.Oodb_scenario.Scenario.qc_ast in
        match Zql.Parser.parse printed with
        | Error e ->
          Alcotest.failf "scenario %d %s: printed text does not parse: %s\n%s" index
            qc.Oodb_scenario.Scenario.qc_name e printed
        | Ok ast -> (
          match
            Zql.Simplify.query gcat ast,
            Zql.Simplify.query gcat qc.Oodb_scenario.Scenario.qc_ast
          with
          | Ok parsed, Ok direct ->
            if parsed <> direct then
              Alcotest.failf "scenario %d %s: parse (to_zql q) simplifies differently\n%s"
                index qc.Oodb_scenario.Scenario.qc_name printed
          | Error e, _ | _, Error e ->
            Alcotest.failf "scenario %d %s: does not simplify: %s\n%s" index
              qc.Oodb_scenario.Scenario.qc_name e printed))
      sc.Oodb_scenario.Scenario.sc_queries
  done

let test_located_errors () =
  let err s =
    match Zql.Simplify.compile cat s with
    | Error m -> m
    | Ok _ -> Alcotest.failf "expected error: %s" s
  in
  Alcotest.(check bool) "attribute error names line 2" true
    (contains (err "SELECT * FROM c IN Cities\nWHERE c.nope == 1") "line 2, column 7");
  Alcotest.(check bool) "unknown collection located" true
    (contains (err {| SELECT * FROM x IN Nowhere |}) "line 1, column 16");
  Alcotest.(check bool) "incomparable operands located" true
    (contains (err {| SELECT * FROM c IN Cities WHERE c.name == 3 |}) "column 34");
  match Zql.Parser.parse "SELECT x FROM a IN B extra" with
  | Error m -> Alcotest.(check bool) "parse error located" true (contains m "column 22")
  | Ok _ -> Alcotest.fail "expected parse error"

let test_parse_errors () =
  let bad s =
    match Zql.Parser.parse s with
    | Ok _ -> Alcotest.failf "expected parse error: %s" s
    | Error _ -> ()
  in
  bad "SELECT";
  bad "SELECT x FROM";
  bad "SELECT x FROM a IN B WHERE";
  bad "SELECT x FROM a IN B WHERE x ==";
  bad "FROM a IN B";
  bad "SELECT x FROM a IN B extra"

(* ------------------------------------------------------------------ *)
(* Simplification                                                       *)

let test_simplify_q2_exact () =
  let q = compile {| SELECT * FROM City c IN Cities WHERE c.mayor.name == "Joe" |} in
  Alcotest.(check bool) "equals hand-built Q2" true (Logical.equal q Q.q2)

let test_simplify_fig2_exact () =
  let q =
    compile
      {| SELECT * FROM City c IN Cities
         WHERE c.mayor.name == c.country.president.name |}
  in
  (* same operators; Mat order may differ, so compare the optimizer's view *)
  Alcotest.(check (list string)) "scope" (Logical.scope Q.fig2) (Logical.scope q)

let test_simplify_paths_shared () =
  (* two predicates through the same link: only one Mat *)
  let q =
    compile
      {| SELECT * FROM e IN Employees
         WHERE e.dept.floor == 3 && e.dept.name == "dept_1" |}
  in
  let rec count_mats (t : Logical.t) =
    (match t.Logical.op with Logical.Mat _ -> 1 | _ -> 0)
    + List.fold_left (fun acc i -> acc + count_mats i) 0 t.Logical.inputs
  in
  Alcotest.(check int) "one Mat" 1 (count_mats q)

let test_simplify_set_range () =
  let q =
    compile
      {| SELECT * FROM t IN Tasks, m IN t.team_members WHERE m.name == "Fred" |}
  in
  let s = Logical.to_string q in
  Alcotest.(check bool) "unnest present" true (contains s "Unnest t.team_members");
  Alcotest.(check bool) "mat-ref present" true (contains s "Mat &m: m")

let test_simplify_exists_matches_range_form () =
  let via_exists =
    compile
      {| SELECT * FROM t IN Tasks
         WHERE t.time == 100 && EXISTS (SELECT m FROM m IN t.team_members WHERE m.name == "Fred") |}
  in
  let via_range =
    compile
      {| SELECT * FROM t IN Tasks, m IN t.team_members
         WHERE t.time == 100 && m.name == "Fred" |}
  in
  (* both produce unnest + mat + conjunctive select; atom order may vary *)
  Alcotest.(check (list string)) "same scope" (Logical.scope via_range) (Logical.scope via_exists)

let test_simplify_multi_range_join () =
  let q = compile {| SELECT * FROM e IN Employees, d IN Departments WHERE e.dept == d |} in
  let rec has_join (t : Logical.t) =
    (match t.Logical.op with Logical.Join _ -> true | _ -> false)
    || List.exists has_join t.Logical.inputs
  in
  Alcotest.(check bool) "join introduced" true (has_join q)

let test_simplify_projection_names () =
  let q = compile {| SELECT e.name AS who, e.age FROM e IN Employees |} in
  match q.Logical.op with
  | Logical.Project [ a; b ] ->
    Alcotest.(check string) "alias" "who" a.Logical.p_name;
    Alcotest.(check string) "default name" "e.age" b.Logical.p_name
  | _ -> Alcotest.fail "expected projection at root"

let test_simplify_errors () =
  Alcotest.(check bool) "unknown collection" true
    (contains (expect_error {| SELECT * FROM x IN Nowhere |}) "Nowhere");
  Alcotest.(check bool) "unknown variable" true
    (contains (expect_error {| SELECT * FROM c IN Cities WHERE z.name == "x" |}) "z");
  Alcotest.(check bool) "unknown attribute" true
    (contains (expect_error {| SELECT * FROM c IN Cities WHERE c.nope == 1 |}) "nope");
  Alcotest.(check bool) "type mismatch" true
    (contains (expect_error {| SELECT * FROM c IN Cities WHERE c.name == 3 |}) "incomparable");
  Alcotest.(check bool) "class annotation" true
    (contains (expect_error {| SELECT * FROM Person c IN Cities |}) "City");
  Alcotest.(check bool) "set in scalar position" true
    (contains (expect_error {| SELECT * FROM t IN Tasks WHERE t.team_members == 3 |}) "set");
  Alcotest.(check bool) "duplicate variable" true
    (contains (expect_error {| SELECT * FROM c IN Cities, c IN Cities |}) "twice");
  Alcotest.(check bool) "set range first" true
    (contains (expect_error {| SELECT * FROM m IN t.team_members |}) "first")

let test_order_by () =
  (match Zql.Simplify.compile_ordered cat
           {| SELECT c.name FROM c IN Cities WHERE c.population >= 5 ORDER BY c.name |} with
  | Ok c ->
    Alcotest.(check bool) "field order" true
      (c.Zql.Simplify.c_order = Some ("c", Some "name"))
  | Error m -> Alcotest.fail m);
  (match Zql.Simplify.compile_ordered cat {| SELECT * FROM c IN Cities ORDER BY c |} with
  | Ok c ->
    Alcotest.(check bool) "identity order" true (c.Zql.Simplify.c_order = Some ("c", None))
  | Error m -> Alcotest.fail m);
  (match Zql.Simplify.compile_ordered cat
           {| SELECT * FROM c IN Cities ORDER BY c.mayor.age |} with
  | Ok c ->
    Alcotest.(check bool) "path order resolves through Mat" true
      (c.Zql.Simplify.c_order = Some ("c.mayor", Some "age"))
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "set-valued rejected" true
    (contains (expect_error {| SELECT * FROM t IN Tasks ORDER BY t.team_members |}) "set");
  Alcotest.(check bool) "projected-away binding rejected" true
    (contains
       (expect_error {| SELECT t.name FROM t IN Tasks, m IN t.team_members ORDER BY m |})
       "not in the query result")

let test_order_by_executes_sorted () =
  let db = Lazy.force Helpers.small_db in
  let dcat = Oodb_exec.Db.catalog db in
  match
    Zql.Simplify.compile_ordered dcat {| SELECT n.name FROM n IN Countries ORDER BY n.name |}
  with
  | Error m -> Alcotest.fail m
  | Ok c ->
    let required =
      { Open_oodb.Physprop.empty with
        Open_oodb.Physprop.order =
          (match c.Zql.Simplify.c_order with
          | Some (b, f) -> Some { Open_oodb.Physprop.ord_binding = b; ord_field = f }
          | None -> None) }
    in
    let plan =
      Open_oodb.Optimizer.plan_exn
        (Open_oodb.Optimizer.optimize ~required dcat c.Zql.Simplify.c_logical)
    in
    let rows = Oodb_exec.Executor.run db plan in
    let names = List.map (fun row -> List.assoc "n.name" row) rows in
    Alcotest.(check bool) "sorted" true
      (names = List.sort Oodb_storage.Value.compare names && List.length names > 2)

let test_compile_optimize_execute () =
  (* the full front-to-back pipeline on a small database *)
  let db = Lazy.force Helpers.small_db in
  let dcat = Oodb_exec.Db.catalog db in
  match Zql.Simplify.compile dcat {| SELECT c.name FROM c IN Cities WHERE c.mayor.name == "Joe" |} with
  | Error m -> Alcotest.fail m
  | Ok q ->
    let plan = Open_oodb.Optimizer.plan_exn (Open_oodb.Optimizer.optimize dcat q) in
    let rows = Oodb_exec.Executor.run db plan in
    List.iter
      (fun row -> Alcotest.(check int) "one column" 1 (List.length row))
      rows

let () =
  Alcotest.run "zql"
    [ ( "lexer",
        [ Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "literals" `Quick test_lexer_literals;
          Alcotest.test_case "dot vs float" `Quick test_lexer_dot_vs_float;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors ] );
      ( "parser",
        [ Alcotest.test_case "paper figure 1" `Quick test_parse_figure1;
          Alcotest.test_case "EXISTS subquery" `Quick test_parse_exists;
          Alcotest.test_case "pp round trip" `Quick test_parse_roundtrip_pp;
          Alcotest.test_case "to_zql round trip over generated queries" `Quick
            test_to_zql_roundtrip_generated;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors ] );
      ( "simplify",
        [ Alcotest.test_case "query 2 exact" `Quick test_simplify_q2_exact;
          Alcotest.test_case "figure 2 scope" `Quick test_simplify_fig2_exact;
          Alcotest.test_case "shared path prefixes" `Quick test_simplify_paths_shared;
          Alcotest.test_case "set-valued range" `Quick test_simplify_set_range;
          Alcotest.test_case "EXISTS equals explicit range" `Quick
            test_simplify_exists_matches_range_form;
          Alcotest.test_case "multi-range join" `Quick test_simplify_multi_range_join;
          Alcotest.test_case "projection naming" `Quick test_simplify_projection_names;
          Alcotest.test_case "error reporting" `Quick test_simplify_errors;
          Alcotest.test_case "located errors" `Quick test_located_errors;
          Alcotest.test_case "ORDER BY" `Quick test_order_by;
          Alcotest.test_case "ORDER BY executes sorted" `Quick test_order_by_executes_sorted;
          Alcotest.test_case "compile-optimize-execute" `Quick test_compile_optimize_execute ] )
    ]
