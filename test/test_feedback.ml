(* The cardinality-feedback loop, end to end:
   - the q-error formula's zero-row behavior (the old epsilon floor
     turned empty results into 1e9-ish artifacts);
   - store round-trips and catalog-scope isolation;
   - the pinned plan flip: on the skewed-statistics catalog the cold
     optimizer full-scans, one harvested execution corrects the
     statistics, and the re-optimization picks the index scan — cheaper
     by actually-measured I/O, not just by estimate;
   - the q-error gate: a cached plan whose recorded quality exceeds the
     limit is evicted and re-planned;
   - feedback is an estimator-only effect: for every workload query, on
     both catalogs, at batch sizes 1 and 64, the feedback-on plan
     returns exactly the same row multiset as the feedback-off plan. *)

module Value = Oodb_storage.Value
module Catalog = Oodb_catalog.Catalog
module Config = Oodb_cost.Config
module Logical = Oodb_algebra.Logical
module Opt = Open_oodb.Optimizer
module Options = Open_oodb.Options
module Physprop = Open_oodb.Physprop
module Physical = Open_oodb.Physical
module Db = Oodb_exec.Db
module Executor = Oodb_exec.Executor
module Q = Oodb_workloads.Queries
module Datagen = Oodb_workloads.Datagen
module Profile = Oodb_obs.Profile
module Feedback = Oodb_obs.Feedback
module Metrics = Oodb_obs.Metrics
module Plancache = Oodb_plancache.Plancache
module Fingerprint = Oodb_plancache.Fingerprint

let skewed_db = lazy (Datagen.generate_skewed ~scale:0.05 ~buffer_pages:512 ())

let small_skewed_db = lazy (Datagen.generate_skewed ~scale:0.01 ~buffer_pages:256 ())

(* ------------------------------------------------------------------ *)
(* q-error formula                                                      *)

let test_qerror_zero_rows () =
  let check msg expected ~est ~actual =
    Alcotest.(check (float 1e-9)) msg expected (Profile.q_error ~est ~actual)
  in
  check "0/0 is perfect" 1.0 ~est:0. ~actual:0.;
  check "overestimate of an empty result" 5.0 ~est:5. ~actual:0.;
  check "missed rows entirely" 3.0 ~est:0. ~actual:3.;
  check "both sub-row" 1.0 ~est:0.2 ~actual:0.;
  check "exact" 1.0 ~est:42. ~actual:42.;
  check "symmetric over" 2.0 ~est:100. ~actual:50.;
  check "symmetric under" 2.0 ~est:50. ~actual:100.;
  (* monotone in the error, finite everywhere *)
  Alcotest.(check bool) "finite on zero actual" true
    (Float.is_finite (Profile.q_error ~est:1e6 ~actual:0.))

(* ------------------------------------------------------------------ *)
(* Store round-trip and scoping                                         *)

let temp_dir () =
  let f = Filename.temp_file "oodb-fb" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let test_store_roundtrip () =
  let cat = Datagen.generate_catalog_only ~scale:0.01 () in
  let dir = temp_dir () in
  let s = Feedback.create ~dir cat in
  Feedback.observe_sel s "k1" ~value:0.01 ~qerror:50.0;
  Feedback.observe_card s "Employees" ~value:500.0 ~qerror:1.0;
  Feedback.observe_fanout s "\"Task\".\"team_members\"" ~value:2.5 ~qerror:1.2;
  Feedback.save s;
  let s2 = Feedback.create ~dir cat in
  Alcotest.(check int) "all three observations reloaded" 3 (Feedback.size s2);
  let hook = Feedback.hook s2 in
  Alcotest.(check (float 1e-9)) "sel value survives"
    0.01
    (Option.get (Hashtbl.find_opt hook.Config.fb_sel "k1"));
  (* EMA merge: a second observation moves halfway toward the new value. *)
  Feedback.observe_sel s2 "k1" ~value:0.03 ~qerror:2.0;
  let hook2 = Feedback.hook s2 in
  Alcotest.(check (float 1e-9)) "EMA alpha 1/2"
    0.02
    (Option.get (Hashtbl.find_opt hook2.Config.fb_sel "k1"));
  (* A different catalog epoch is a different scope: nothing leaks. *)
  Catalog.bump_epoch cat;
  let s3 = Feedback.create ~dir cat in
  Alcotest.(check int) "bumped epoch loads empty" 0 (Feedback.size s3);
  ignore (Feedback.clear_dir dir : int);
  let s4 = Feedback.create ~dir cat in
  Alcotest.(check int) "clear_dir wipes the store" 0 (Feedback.size s4)

(* ------------------------------------------------------------------ *)
(* The pinned plan flip on the skewed catalog                           *)

let labels plan = List.map Helpers.alg_label (Helpers.algs plan)

let run_feedback_pass db options q =
  (* One optimize + profiled execution + harvest, returning the plan,
     its profile, and options with the harvested feedback installed. *)
  let cat = Db.catalog db in
  let plan = Opt.plan_exn (Opt.optimize ~options cat q) in
  let rows, report, prof = Profile.run ~config:options.Options.config db plan in
  let store = Feedback.create cat in
  let harvested = Feedback.harvest store options.Options.config cat prof in
  (plan, rows, report, prof, harvested, Feedback.install store options)

let test_skewed_plan_flip () =
  let db = Lazy.force skewed_db in
  let cat = Db.catalog db in
  let plan1, rows1, report1, prof, harvested, options_fb =
    run_feedback_pass db Options.default Q.fred
  in
  Alcotest.(check bool) "cold plan is a full scan" true
    (List.mem "file-scan" (labels plan1));
  Alcotest.(check bool) "cold plan does not use the index" false
    (List.mem "index-scan" (labels plan1));
  Alcotest.(check bool) "harvested at least scan card and filter sel" true
    (harvested >= 2);
  (* The skew is big enough that the execution's worst q-error trips the
     default gate — this is what forces the cached plan out. *)
  let max_q, _ = Feedback.plan_quality prof in
  Alcotest.(check bool)
    (Printf.sprintf "max q-error %.1f exceeds the default limit" max_q)
    true
    (max_q > Options.default.Options.feedback_qerror_limit);
  (* Re-optimize with the harvested statistics installed. *)
  let plan2 = Opt.plan_exn (Opt.optimize ~options:options_fb cat Q.fred) in
  Alcotest.(check bool) "feedback plan uses the index" true
    (List.mem "index-scan" (labels plan2));
  (* Same answer, cheaper by actually-simulated I/O. *)
  let rows2, report2, prof2 = Profile.run ~config:options_fb.Options.config db plan2 in
  Helpers.check_same_rows "flip preserves rows" rows1 rows2;
  Alcotest.(check bool)
    (Printf.sprintf "index plan cheaper by actuals (%.3fs < %.3fs)"
       report2.Executor.simulated_seconds report1.Executor.simulated_seconds)
    true
    (report2.Executor.simulated_seconds < report1.Executor.simulated_seconds);
  (* The corrected estimates are attributed to feedback in the profile. *)
  let rec any_feedback (n : Profile.node) =
    String.equal n.Profile.est_source "feedback"
    || List.exists any_feedback n.Profile.children
  in
  Alcotest.(check bool) "est_source: feedback appears" true (any_feedback prof2);
  let max_q2, _ = Feedback.plan_quality prof2 in
  Alcotest.(check bool)
    (Printf.sprintf "corrected plan passes the gate (max q %.2f)" max_q2)
    true
    (max_q2 <= Options.default.Options.feedback_qerror_limit)

(* ------------------------------------------------------------------ *)
(* The q-error gate on the plan cache                                   *)

let test_qerror_gate_evicts () =
  let db = Lazy.force skewed_db in
  let cat = Db.catalog db in
  let pc = Plancache.create () in
  let registry = Metrics.create () in
  let o1 = Plancache.optimize ~registry pc cat Q.fred in
  Alcotest.(check bool) "first optimize is cold" false o1.Plancache.cached;
  let o2 = Plancache.optimize ~registry pc cat Q.fred in
  Alcotest.(check bool) "second optimize hits" true o2.Plancache.cached;
  (* Record a profiled execution whose quality exceeds the gate. *)
  let plan = Option.get o1.Plancache.plan in
  let _, _, prof = Profile.run db plan in
  let max_q, mean_q = Feedback.plan_quality prof in
  let fp =
    Fingerprint.make ~catalog:cat ~options:Options.default ~required:Physprop.empty
      Q.fred
  in
  Plancache.note_execution pc fp ~epoch:(Catalog.epoch cat) ~max_qerror:max_q
    ~mean_qerror:mean_q;
  Alcotest.(check bool)
    (Printf.sprintf "skewed execution is over the limit (max q %.1f)" max_q)
    true
    (max_q > Options.default.Options.feedback_qerror_limit);
  (match Plancache.entries pc with
  | [ e ] -> (
    match e.Plancache.e_quality with
    | Some q ->
      Alcotest.(check int) "one execution recorded" 1 q.Plancache.q_execs;
      Alcotest.(check (float 1e-9)) "max q-error recorded" max_q
        q.Plancache.q_max_qerror
    | None -> Alcotest.fail "entry has no quality record")
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
  (* A gated lookup now evicts and re-plans. *)
  let o3 =
    Plancache.optimize
      ~qerror_limit:Options.default.Options.feedback_qerror_limit ~registry pc cat
      Q.fred
  in
  Alcotest.(check bool) "gated optimize re-plans cold" false o3.Plancache.cached;
  let s = Plancache.stats pc in
  Alcotest.(check int) "one q-error eviction counted" 1 s.Plancache.qerror_evictions;
  (* The re-planned entry starts with a clean quality record. *)
  let o4 =
    Plancache.optimize
      ~qerror_limit:Options.default.Options.feedback_qerror_limit ~registry pc cat
      Q.fred
  in
  Alcotest.(check bool) "fresh entry serves again" true o4.Plancache.cached

let test_note_execution_persists () =
  let cat = Datagen.generate_catalog_only ~scale:0.01 () in
  let dir = temp_dir () in
  let pc = Plancache.create ~dir () in
  ignore (Plancache.optimize pc cat Q.q2 : Plancache.outcome);
  let fp =
    Fingerprint.make ~catalog:cat ~options:Options.default ~required:Physprop.empty
      Q.q2
  in
  Plancache.note_execution pc fp ~epoch:(Catalog.epoch cat) ~max_qerror:3.0
    ~mean_qerror:1.5;
  (* A fresh cache over the same directory sees the quality record. *)
  let pc2 = Plancache.create ~dir () in
  (match Plancache.lookup pc2 fp with
  | Some { Plancache.e_quality = Some q; _ } ->
    Alcotest.(check (float 1e-9)) "max q-error persisted" 3.0 q.Plancache.q_max_qerror
  | Some { Plancache.e_quality = None; _ } -> Alcotest.fail "quality lost on disk"
  | None -> Alcotest.fail "persisted entry missing");
  (* And the disk tier is gated too: a fresh process must not serve it. *)
  let pc3 = Plancache.create ~dir () in
  Alcotest.(check bool) "disk tier gated" true
    (Plancache.lookup ~qerror_limit:2.0 pc3 fp = None);
  Alcotest.(check int) "disk gate counted" 1
    (Plancache.stats pc3).Plancache.qerror_evictions

(* ------------------------------------------------------------------ *)
(* Differential: feedback never changes answers                         *)

let test_feedback_preserves_results () =
  let dbs =
    [ ("normal", Lazy.force Helpers.small_db);
      ("skewed", Lazy.force small_skewed_db) ]
  in
  List.iter
    (fun (db_name, db) ->
      let cat = Db.catalog db in
      List.iter
        (fun batch_size ->
          let options = Options.with_batch_size batch_size Options.default in
          List.iter
            (fun (name, q) ->
              let plan_off, rows_off, _, _, _, options_fb =
                run_feedback_pass db options q
              in
              ignore (plan_off : Open_oodb.Model.Engine.plan);
              let plan_on = Opt.plan_exn (Opt.optimize ~options:options_fb cat q) in
              let rows_on =
                Executor.run ~config:options_fb.Options.config db plan_on
              in
              Helpers.check_same_rows
                (Printf.sprintf "%s on %s db, batch %d" name db_name batch_size)
                rows_off rows_on)
            (("fred", Q.fred) :: Q.all))
        [ 1; 64 ])
    dbs

let () =
  Alcotest.run "feedback"
    [ ( "q-error",
        [ Alcotest.test_case "zero-row cases" `Quick test_qerror_zero_rows ] );
      ( "store",
        [ Alcotest.test_case "round-trip and scoping" `Quick test_store_roundtrip ] );
      ( "loop",
        [ Alcotest.test_case "skewed-stats plan flip" `Slow test_skewed_plan_flip ] );
      ( "gate",
        [ Alcotest.test_case "q-error eviction" `Quick test_qerror_gate_evicts;
          Alcotest.test_case "quality persists on disk" `Quick
            test_note_execution_persists ] );
      ( "differential",
        [ Alcotest.test_case "row multisets preserved" `Slow
            test_feedback_preserves_results ] ) ]
